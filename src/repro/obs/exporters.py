"""Export traces and metrics: JSONL, Prometheus text, Chrome trace events.

Three formats, three consumers:

* **JSONL** — one :class:`~repro.runtime.trace.TraceRecord` per line; lossless
  round-trip (``load`` returns records equal to the originals) as long as
  record data is JSON-representable, which holds for every kind the fabric
  emits.
* **Prometheus text** — the classic exposition format (``# HELP``/``# TYPE``
  lines, ``name{labels} value`` samples), scrape-compatible and greppable.
* **Chrome trace events** — the ``traceEvents`` JSON consumed by Perfetto
  and ``chrome://tracing``: one track (thread) per sequencing node, one
  complete slice per message hop, instant events for publish/deliver, and
  one flow (``ph: "s"/"t"/"f"``, flow id = message id) threading each
  message's publish through its sequencing hops to every delivery so the
  hops connect visually.  Timestamps are **virtual** simulation time (ms),
  exported in the format's microsecond unit.
"""

import json
import math
import pathlib
from typing import Dict, List, Union

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.spans import build_spans, hop_intervals
from repro.runtime.trace import Trace, TraceRecord

PathLike = Union[str, pathlib.Path]

# -- JSONL -----------------------------------------------------------------


def trace_to_jsonl(trace: Trace) -> str:
    """Serialize every record as one JSON object per line."""
    return "\n".join(
        json.dumps(
            {"time": record.time, "kind": record.kind, "data": record.data},
            sort_keys=True,
        )
        for record in trace
    )


def write_trace_jsonl(trace: Trace, path: PathLike) -> pathlib.Path:
    """Write :func:`trace_to_jsonl` output to ``path``."""
    resolved = pathlib.Path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    text = trace_to_jsonl(trace)
    resolved.write_text(text + "\n" if text else "")
    return resolved


def trace_from_jsonl(text: str) -> List[TraceRecord]:
    """Parse JSONL back into records equal to the originals.

    Numeric data fields come back as real ints/floats (JSON preserves the
    distinction), and ``time`` is coerced to ``float`` even when the writer
    serialized a whole number without a fractional part — consumers doing
    arithmetic on times (:mod:`repro.obs.forensics`, :mod:`repro.obs.spans`)
    must behave identically on a loaded trace and a live one.
    """
    records: List[TraceRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        records.append(TraceRecord(float(obj["time"]), obj["kind"], obj["data"]))
    return records


def read_trace_jsonl(path: PathLike) -> List[TraceRecord]:
    """Load records from a JSONL file written by :func:`write_trace_jsonl`."""
    return trace_from_jsonl(pathlib.Path(path).read_text())


# -- Prometheus text -------------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels, extra: Dict[str, str] = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def registry_to_prometheus(registry: MetricsRegistry, collect: bool = True) -> str:
    """Render the registry in the Prometheus text exposition format.

    Runs the registered collectors first (``collect=False`` skips that, for
    rendering a snapshot untouched).  Histograms expose the standard
    ``_bucket``/``_sum``/``_count`` series plus a non-standard ``_max``
    high-water sample.
    """
    if collect:
        registry.collect()
    lines: List[str] = []
    seen_header = set()
    for instrument in registry.instruments():
        name = instrument.name
        if name not in seen_header:
            seen_header.add(name)
            help_text = registry.help_for(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {registry.type_of(name)}")
        if isinstance(instrument, Histogram):
            for bound, cumulative in instrument.cumulative():
                labels = _format_labels(
                    instrument.labels, {"le": _format_value(float(bound))}
                )
                lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _format_labels(instrument.labels)
            lines.append(f"{name}_sum{labels} {_format_value(instrument.sum)}")
            lines.append(f"{name}_count{labels} {instrument.count}")
            lines.append(f"{name}_max{labels} {_format_value(instrument.max)}")
        else:
            labels = _format_labels(instrument.labels)
            lines.append(f"{name}{labels} {_format_value(float(instrument.value))}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: PathLike) -> pathlib.Path:
    """Write :func:`registry_to_prometheus` output to ``path``."""
    resolved = pathlib.Path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    resolved.write_text(registry_to_prometheus(registry))
    return resolved


# -- Chrome trace events ---------------------------------------------------

#: Process ids used for track grouping in the trace viewer.
SEQUENCING_PID = 1
HOSTS_PID = 2
PROFILER_PID = 3
EPOCHS_PID = 4

#: Minimum slice duration (µs) so zero-length hops stay visible.
MIN_SLICE_US = 1.0


def _us(time_ms: float) -> float:
    """Virtual milliseconds -> trace-event microseconds."""
    return time_ms * 1000.0


#: Category string shared by a message's flow events (start/step/finish
#: events bind into one flow by matching ``cat`` + ``name`` + ``id``).
FLOW_CAT = "message"


def profiler_counter_events(profiler) -> List[Dict[str, object]]:
    """Chrome counter (``ph: "C"``) events from a profiler's sample series.

    Each :class:`~repro.obs.profiler.PhaseProfiler` sample — cumulative
    exclusive wall seconds per phase at a virtual time — becomes one
    counter event on a dedicated "hot-path profile" process, so Perfetto
    draws the phase-time trajectory as stacked counter tracks alongside
    the message flows.  Values are exported in milliseconds of wall time
    (against the virtual-time x axis).
    """
    if not getattr(profiler, "samples", None):
        return []
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": PROFILER_PID,
            "tid": 0,
            "args": {"name": "hot-path profile"},
        }
    ]
    for virtual_time, phases in profiler.samples:
        events.append(
            {
                "ph": "C",
                "name": "phase wall ms",
                "ts": _us(virtual_time),
                "pid": PROFILER_PID,
                "tid": 0,
                "args": {
                    phase: seconds * 1000.0 for phase, seconds in phases.items()
                },
            }
        )
    return events


def epoch_events(trace: Trace) -> List[Dict[str, object]]:
    """Chrome events for online reconfiguration (``epoch_*`` records).

    A dedicated "epochs" process (:data:`EPOCHS_PID`): tid 0 carries one
    complete (``ph: "X"``) slice per epoch switch spanning its
    begin/end records (an unmatched ``begin`` — e.g. a trace cut mid
    switch — degrades to an instant), and each group gets its own fence
    track (tid = group + 1) with an instant event per ``epoch_fence``
    record, so the fence publish and its per-host consumptions line up
    under the switch slice that injected them.
    """
    fences: List[TraceRecord] = []
    switches: List[TraceRecord] = []
    for record in trace:
        if record.kind == "epoch_fence":
            fences.append(record)
        elif record.kind == "epoch_switch":
            switches.append(record)
    if not fences and not switches:
        return []
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": EPOCHS_PID,
            "tid": 0,
            "args": {"name": "epochs"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": EPOCHS_PID,
            "tid": 0,
            "args": {"name": "epoch switches"},
        },
    ]
    open_switches: Dict[int, TraceRecord] = {}
    for record in switches:
        epoch = record.data["epoch"]
        if record.data["phase"] == "begin":
            open_switches[epoch] = record
            continue
        begin = open_switches.pop(epoch, None)
        start = record.time if begin is None else begin.time
        events.append(
            {
                "ph": "X",
                "name": f"switch to epoch {epoch}",
                "ts": _us(start),
                "dur": max(_us(record.time - start), MIN_SLICE_US),
                "pid": EPOCHS_PID,
                "tid": 0,
                "args": {
                    "epoch": epoch,
                    "drain_events": record.data.get("drain_events"),
                },
            }
        )
    for record in open_switches.values():
        events.append(
            {
                "ph": "i",
                "name": f"switch to epoch {record.data['epoch']} (begin)",
                "ts": _us(record.time),
                "pid": EPOCHS_PID,
                "tid": 0,
                "s": "t",
                "args": {"epoch": record.data["epoch"]},
            }
        )
    named_groups = set()
    for record in fences:
        group = record.data["group"]
        tid = group + 1
        if group not in named_groups:
            named_groups.add(group)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": EPOCHS_PID,
                    "tid": tid,
                    "args": {"name": f"group {group} fences"},
                }
            )
        phase = record.data["phase"]
        args: Dict[str, object] = {
            "msg": record.data["msg"],
            "epoch": record.data["epoch"],
            "phase": phase,
        }
        if phase == "publish":
            args["sender"] = record.data.get("sender")
        else:
            args["host"] = record.data.get("host")
        events.append(
            {
                "ph": "i",
                "name": f"fence e{record.data['epoch']} ({phase})",
                "ts": _us(record.time),
                "pid": EPOCHS_PID,
                "tid": tid,
                "s": "t",
                "args": args,
            }
        )
    return events


def trace_to_chrome(trace: Trace, profiler=None) -> Dict[str, object]:
    """Build a Chrome trace-event document from a fabric trace.

    Layout: the "sequencing nodes" process has one thread per node with a
    complete (``ph: "X"``) slice per message visit; the "hosts" process has
    one thread per host with instant (``ph: "i"``) publish/deliver events.
    Each message additionally emits one flow — start (``ph: "s"``) at the
    publish, a step (``ph: "t"``) at every sequencing hop, and a finish
    (``ph: "f"``, binding point ``"e"``) at every delivery — all sharing
    the message id as flow id, so Perfetto draws arrows connecting the
    message's path across tracks.  Load the result in Perfetto or
    ``chrome://tracing``.

    Traces from online reconfigurations additionally get an "epochs"
    process with switch slices and per-group fence instants (see
    :func:`epoch_events`).  When a
    :class:`~repro.obs.profiler.PhaseProfiler` with samples is given,
    its cumulative phase-time series is appended as counter events on
    another process (see :func:`profiler_counter_events`).
    """
    spans = build_spans(trace)
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": SEQUENCING_PID,
            "tid": 0,
            "args": {"name": "sequencing nodes"},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": HOSTS_PID,
            "tid": 0,
            "args": {"name": "hosts"},
        },
    ]
    named_nodes = set()
    named_hosts = set()

    def name_node(node: int) -> None:
        if node not in named_nodes:
            named_nodes.add(node)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": SEQUENCING_PID,
                    "tid": node,
                    "args": {"name": f"seq node {node}"},
                }
            )

    def name_host(host: int) -> None:
        if host not in named_hosts:
            named_hosts.add(host)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": HOSTS_PID,
                    "tid": host,
                    "args": {"name": f"host {host}"},
                }
            )

    for msg_id in sorted(spans):
        span = spans[msg_id]
        flow = {"cat": FLOW_CAT, "name": f"m{msg_id}", "id": msg_id}
        name_host(span.sender)
        events.append(
            {
                "ph": "i",
                "name": f"publish m{msg_id}",
                "ts": _us(span.publish_time),
                "pid": HOSTS_PID,
                "tid": span.sender,
                "s": "t",
                "args": {"msg": msg_id, "group": span.group},
            }
        )
        events.append(
            {
                "ph": "s",
                "ts": _us(span.publish_time),
                "pid": HOSTS_PID,
                "tid": span.sender,
                **flow,
            }
        )
        for node, start, end in hop_intervals(span):
            name_node(node)
            events.append(
                {
                    "ph": "X",
                    "name": f"m{msg_id} g{span.group}",
                    "ts": _us(start),
                    "dur": max(_us(end - start), MIN_SLICE_US),
                    "pid": SEQUENCING_PID,
                    "tid": node,
                    "args": {"msg": msg_id, "group": span.group},
                }
            )
            events.append(
                {
                    "ph": "t",
                    "ts": _us(start),
                    "pid": SEQUENCING_PID,
                    "tid": node,
                    **flow,
                }
            )
        for host in sorted(span.deliveries):
            name_host(host)
            events.append(
                {
                    "ph": "i",
                    "name": f"deliver m{msg_id}",
                    "ts": _us(span.deliveries[host]),
                    "pid": HOSTS_PID,
                    "tid": host,
                    "s": "t",
                    "args": {"msg": msg_id, "group": span.group},
                }
            )
            events.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "ts": _us(span.deliveries[host]),
                    "pid": HOSTS_PID,
                    "tid": host,
                    **flow,
                }
            )
    events.extend(epoch_events(trace))
    if profiler is not None:
        events.extend(profiler_counter_events(profiler))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Trace, path: PathLike, profiler=None) -> pathlib.Path:
    """Write :func:`trace_to_chrome` output as JSON to ``path``."""
    resolved = pathlib.Path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    resolved.write_text(json.dumps(trace_to_chrome(trace, profiler=profiler)))
    return resolved
