"""Ordering forensics: journey reconstruction and stall attribution.

The paper's contribution is an *instant* deliver-or-buffer decision made
from sequencing-atom stamps (Sections 3.1/3.3).  The hold-back gauges
say *that* a receiver buffered; this module says *why* — which missing
``(atom, expected_seq)`` pair blocked each message, for how long, and
what delayed the missing predecessor (loss, a link outage, a crashed
peer, failover replay, or nothing at all — it was genuinely in flight).

Everything is rebuilt from trace records, so forensics works identically
on a live :class:`~repro.runtime.trace.Trace` and on a JSONL export loaded
from disk.  The flight-recorder kinds consumed here:

===============  ==========================================================
kind             data fields
===============  ==========================================================
``publish``      ``msg``, ``group``, ``sender``
``seq_hop``      ``msg``, ``node``, ``atom`` (entry atom of a node visit)
``atom_seq``     ``msg``, ``node``, ``atom``, ``seq`` (overlap number or
                 null), ``group_seq`` (group-local number or null)
``atom_pass``    ``msg``, ``node``, ``atom`` (pass-through, arrival order)
``distribute``   ``msg``, ``node``, ``members``
``deliver``      ``msg``, ``host``, ``group``, ``sender``, ``publish_time``
``buffer``       ``msg``, ``host``, ``group``, ``blocked_kind``,
                 ``blocked_on``, ``have_seq``, ``expected_seq``
``drain``        ``msg``, ``host``, ``group``, ``unblocked_by``, ``waited``
``retransmit``   ``src``, ``dst``, ``cause``
``link_failure`` ``src``, ``dst``, ``attempts``
``failover``     ``node``, ``old_machine``, ``new_machine``, ``replayed``
``epoch_fence``  ``phase`` ("publish"/"deliver"), ``msg``, ``group``,
                 ``epoch``, ``sender`` (publish) / ``host`` (deliver)
``epoch_switch`` ``phase`` ("begin"/"end"), ``epoch``, ``groups`` (begin)
                 / ``drain_events`` (end)
===============  ==========================================================

The ``atom_seq`` records double as a sequence-space registry: the message
assigned ``(atom, seq)`` *is* the missing predecessor a buffered message
waits for, so blocking pairs join exactly against the stamping history —
no guessing.  See ``docs/OBSERVABILITY.md`` ("Forensics") and the
``repro explain`` CLI subcommand.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.runtime.trace import TraceRecord

__all__ = [
    "AtomEvent",
    "BufferEvent",
    "Journey",
    "JourneyIndex",
    "ReceiverLeg",
    "render_journey",
    "render_stalls",
    "waits_to_dot",
]

#: Attribution vocabulary, most specific first.  ``link_failure`` only
#: applies to never-drained gaps (an abandoned packet explains a message
#: that never arrived); ``epoch_switch`` attributes a stall overlapping
#: an online reconfiguration's fence drain (concrete fault evidence still
#: wins over it); ``in_flight`` is the no-evidence fallback.
CAUSE_EPOCH_SWITCH = "epoch_switch"
CAUSE_PRIORITY = (
    "failover_replay",
    "outage",
    "peer_down",
    "loss",
    CAUSE_EPOCH_SWITCH,
)
CAUSE_IN_FLIGHT = "in_flight"
CAUSE_LINK_FAILURE = "link_failure"


@dataclass(frozen=True)
class AtomEvent:
    """One atom's decision about one message (stamp or pass-through)."""

    time: float
    node: int
    atom: str
    #: ``"seq"`` (assigned at least one number) or ``"pass"``
    action: str
    #: overlap sequence number assigned, if any
    seq: Optional[int] = None
    #: group-local number assigned (ingress stamping), if any
    group_seq: Optional[int] = None


@dataclass
class BufferEvent:
    """One receiver-side buffering, from decision to (maybe) release."""

    msg_id: int
    host: int
    group: int
    #: arrival time at the receiver == buffering time
    time: float
    #: ``"group"`` or ``"atom"`` — which sequence space blocked
    blocked_kind: str
    #: stable key of the blocking space (``"Q(0,1)"`` or ``"group:3"``)
    blocked_on: str
    have_seq: int
    expected_seq: int
    drain_time: Optional[float] = None
    #: the arrival whose processing released this message from the buffer
    unblocked_by: Optional[int] = None
    waited: Optional[float] = None
    #: message that carried the missing ``(blocked_on, expected_seq)``
    #: number — the exact predecessor this receiver was waiting for
    missing_msg: Optional[int] = None
    #: attribution verdict (see :data:`CAUSE_PRIORITY`)
    cause: Optional[str] = None
    #: matched fault records per cause, the evidence behind the verdict
    evidence: Dict[str, int] = field(default_factory=dict)

    @property
    def resolved(self) -> bool:
        """Whether the buffered message was eventually released."""
        return self.drain_time is not None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able summary (deterministic field order)."""
        return {
            "msg": self.msg_id,
            "host": self.host,
            "group": self.group,
            "time": self.time,
            "blocked_kind": self.blocked_kind,
            "blocked_on": self.blocked_on,
            "have_seq": self.have_seq,
            "expected_seq": self.expected_seq,
            "drain_time": self.drain_time,
            "unblocked_by": self.unblocked_by,
            "waited": self.waited,
            "missing_msg": self.missing_msg,
            "cause": self.cause,
            "evidence": {k: self.evidence[k] for k in sorted(self.evidence)},
        }


@dataclass
class ReceiverLeg:
    """One message copy as observed by one receiver."""

    host: int
    #: first arrival at the receiver (buffer time if buffered, else the
    #: delivery instant — direct deliveries have zero hold-back wait)
    arrival_time: float
    deliver_time: Optional[float] = None
    buffer: Optional[BufferEvent] = None

    @property
    def holdback_wait(self) -> Optional[float]:
        """Time spent in the hold-back buffer (0 for direct deliveries)."""
        if self.deliver_time is None:
            return None
        return self.deliver_time - self.arrival_time


@dataclass
class Journey:
    """The reconstructed end-to-end life of one published message."""

    msg_id: int
    group: int
    sender: int
    publish_time: float
    atom_events: List[AtomEvent] = field(default_factory=list)
    distribute_time: Optional[float] = None
    distribute_node: Optional[int] = None
    #: per-receiver legs, keyed by host id
    legs: Dict[int, ReceiverLeg] = field(default_factory=dict)
    #: True for epoch-fence markers (consumed by the fabric, not the app)
    is_fence: bool = False

    def nodes_visited(self) -> List[int]:
        """Sequencing nodes on the message's path, in visit order."""
        nodes: List[int] = []
        for event in self.atom_events:
            if not nodes or nodes[-1] != event.node:
                nodes.append(event.node)
        return nodes

    def breakdown(self, host: int) -> Optional[Dict[str, float]]:
        """Split one copy's end-to-end latency into its three causes.

        * ``sequencing`` — first atom visit until distribution fan-out
          (the sequencing-path detour the protocol adds),
        * ``holdback`` — receiver-side ordering wait in the hold-back
          buffer (zero for messages deliverable on arrival),
        * ``propagation`` — everything else: publisher-to-ingress plus
          fan-out-to-receiver wire time.

        The three sum exactly to ``total``.  Returns ``None`` while the
        journey is incomplete for ``host`` (undelivered, or the trace
        lacks sequencing records).
        """
        leg = self.legs.get(host)
        if (
            leg is None
            or leg.deliver_time is None
            or self.distribute_time is None
            or not self.atom_events
        ):
            return None
        first_atom = self.atom_events[0].time
        sequencing = self.distribute_time - first_atom
        holdback = leg.deliver_time - leg.arrival_time
        total = leg.deliver_time - self.publish_time
        return {
            "propagation": total - sequencing - holdback,
            "sequencing": sequencing,
            "holdback": holdback,
            "total": total,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able journey summary (deterministic ordering)."""
        return {
            "msg": self.msg_id,
            "group": self.group,
            "sender": self.sender,
            "publish_time": self.publish_time,
            "atom_events": [
                {
                    "time": e.time,
                    "node": e.node,
                    "atom": e.atom,
                    "action": e.action,
                    "seq": e.seq,
                    "group_seq": e.group_seq,
                }
                for e in self.atom_events
            ],
            "distribute_time": self.distribute_time,
            "distribute_node": self.distribute_node,
            "receivers": [
                {
                    "host": host,
                    "arrival_time": leg.arrival_time,
                    "deliver_time": leg.deliver_time,
                    "buffered": (
                        leg.buffer.to_dict() if leg.buffer is not None else None
                    ),
                    "breakdown": self.breakdown(host),
                }
                for host, leg in sorted(self.legs.items())
            ],
        }


class JourneyIndex:
    """Rebuild per-message journeys and hold-back forensics from records.

    Accepts any iterable of :class:`~repro.runtime.trace.TraceRecord` —
    a live :class:`~repro.runtime.trace.Trace` or the list returned by
    :func:`repro.obs.exporters.trace_from_jsonl` — and consumes it in
    one pass.  Records must be in emission (chronological) order, which
    both sources guarantee.

    Attribution runs eagerly: every :class:`BufferEvent` leaves the
    constructor with its ``missing_msg``, ``cause``, and ``evidence``
    resolved by joining against the retransmission / link-failure /
    failover records in the same stream.
    """

    def __init__(self, records: Iterable[TraceRecord]):
        self.journeys: Dict[int, Journey] = {}
        self.buffer_events: List[BufferEvent] = []
        #: (time, stream index, src repr, dst repr, cause)
        self.retransmits: List[Tuple[float, int, str, str, str]] = []
        #: (time, src repr, dst repr, attempts)
        self.link_failures: List[Tuple[float, str, str, int]] = []
        #: (time, node id)
        self.failovers: List[Tuple[float, int]] = []
        #: (begin, end, epoch) per online epoch switch (fence drain window)
        self.epoch_switches: List[Tuple[float, float, int]] = []
        self._switch_open: Dict[int, float] = {}
        self.end_time = 0.0
        #: (space key, seq) -> msg_id that was assigned that number
        self._seq_owner: Dict[Tuple[str, int], int] = {}
        #: (host, msg) -> its (unique) buffer event
        self._buffer_by_key: Dict[Tuple[int, int], BufferEvent] = {}
        #: per-host occupancy deltas: (time, stream index, +1/-1)
        self._occupancy: Dict[int, List[Tuple[float, int, int]]] = {}
        for index, record in enumerate(records):
            self._ingest(index, record)
        self._attribute_all()

    @classmethod
    def from_jsonl(cls, text: str) -> "JourneyIndex":
        """Build from a JSONL export (see ``write_trace_jsonl``)."""
        from repro.obs.exporters import trace_from_jsonl

        return cls(trace_from_jsonl(text))

    # -- ingestion ---------------------------------------------------------

    def _ingest(self, index: int, record: TraceRecord) -> None:
        self.end_time = max(self.end_time, record.time)
        data = record.data
        kind = record.kind
        if kind == "publish":
            self.journeys[data["msg"]] = Journey(
                msg_id=data["msg"],
                group=data["group"],
                sender=data["sender"],
                publish_time=record.time,
            )
        elif kind in ("atom_seq", "atom_pass"):
            self._ingest_atom(record)
        elif kind == "distribute":
            journey = self.journeys.get(data["msg"])
            if journey is not None:
                journey.distribute_time = record.time
                journey.distribute_node = data["node"]
        elif kind == "deliver":
            self._ingest_deliver(record)
        elif kind == "buffer":
            self._ingest_buffer(index, record)
        elif kind == "drain":
            self._ingest_drain(index, record)
        elif kind == "retransmit":
            self.retransmits.append(
                (record.time, index, data["src"], data["dst"], data["cause"])
            )
        elif kind == "link_failure":
            self.link_failures.append(
                (record.time, data["src"], data["dst"], data["attempts"])
            )
        elif kind == "failover":
            self.failovers.append((record.time, data["node"]))
        elif kind == "epoch_fence":
            # Fences travel the normal sequencing path: register a journey
            # on publish (so their atom_seq records feed the sequence-space
            # registry — a gap blocked on a fence's number is explainable)
            # and close the receiver leg on consumption.
            if data["phase"] == "publish":
                self.journeys[data["msg"]] = Journey(
                    msg_id=data["msg"],
                    group=data["group"],
                    sender=data["sender"],
                    publish_time=record.time,
                    is_fence=True,
                )
            else:
                self._ingest_deliver(record)
        elif kind == "epoch_switch":
            if data["phase"] == "begin":
                self._switch_open[data["epoch"]] = record.time
            else:
                begin = self._switch_open.pop(data["epoch"], record.time)
                self.epoch_switches.append((begin, record.time, data["epoch"]))

    def _ingest_atom(self, record: TraceRecord) -> None:
        data = record.data
        journey = self.journeys.get(data["msg"])
        seq = data.get("seq")
        group_seq = data.get("group_seq")
        event = AtomEvent(
            time=record.time,
            node=data["node"],
            atom=data["atom"],
            action="seq" if record.kind == "atom_seq" else "pass",
            seq=seq,
            group_seq=group_seq,
        )
        if journey is not None:
            journey.atom_events.append(event)
            if seq is not None:
                self._seq_owner[(data["atom"], seq)] = data["msg"]
            if group_seq is not None:
                self._seq_owner[(f"group:{journey.group}", group_seq)] = data["msg"]

    def _ingest_deliver(self, record: TraceRecord) -> None:
        data = record.data
        journey = self.journeys.get(data["msg"])
        if journey is None:
            return
        leg = journey.legs.get(data["host"])
        if leg is None:
            leg = ReceiverLeg(host=data["host"], arrival_time=record.time)
            journey.legs[data["host"]] = leg
        leg.deliver_time = record.time

    def _ingest_buffer(self, index: int, record: TraceRecord) -> None:
        data = record.data
        event = BufferEvent(
            msg_id=data["msg"],
            host=data["host"],
            group=data["group"],
            time=record.time,
            blocked_kind=data["blocked_kind"],
            blocked_on=data["blocked_on"],
            have_seq=data["have_seq"],
            expected_seq=data["expected_seq"],
        )
        self.buffer_events.append(event)
        self._buffer_by_key[(event.host, event.msg_id)] = event
        self._occupancy.setdefault(event.host, []).append((record.time, index, 1))
        journey = self.journeys.get(event.msg_id)
        if journey is not None:
            journey.legs[event.host] = ReceiverLeg(
                host=event.host, arrival_time=record.time, buffer=event
            )

    def _ingest_drain(self, index: int, record: TraceRecord) -> None:
        data = record.data
        event = self._buffer_by_key.get((data["host"], data["msg"]))
        if event is None:
            return
        event.drain_time = record.time
        event.unblocked_by = data.get("unblocked_by")
        event.waited = data.get("waited")
        if event.waited is None:
            event.waited = record.time - event.time
        self._occupancy.setdefault(data["host"], []).append((record.time, index, -1))

    # -- attribution -------------------------------------------------------

    def _attribute_all(self) -> None:
        # A switch still open when the trace ends (the run stopped mid-
        # drain) fences everything until the end of the recording.
        for epoch in sorted(self._switch_open):
            self.epoch_switches.append(
                (self._switch_open[epoch], self.end_time, epoch)
            )
        self._switch_open.clear()
        self.epoch_switches.sort()
        for event in self.buffer_events:
            self._attribute(event)

    def _match_names(self, event: BufferEvent) -> Optional[List[str]]:
        """Process names whose link trouble can explain ``event``'s gap.

        When the missing predecessor is known, its reconstructed path —
        publisher host, every sequencing node it visited, and the stalled
        receiver — bounds the join.  When it is unknown (the predecessor
        never reached a stamping atom, so it was still upstream), return
        ``None``: any link's trouble is admissible evidence.
        """
        if event.missing_msg is None:
            return None
        journey = self.journeys.get(event.missing_msg)
        if journey is None:
            return None
        names = [repr(("host", journey.sender)), repr(("host", event.host))]
        for node in journey.nodes_visited():
            names.append(repr(("seq", node)))
        if journey.distribute_node is not None:
            names.append(repr(("seq", journey.distribute_node)))
        return names

    def _attribute(self, event: BufferEvent) -> None:
        event.missing_msg = self._seq_owner.get(
            (event.blocked_on, event.expected_seq)
        )
        window_start = event.time
        if event.missing_msg is not None:
            journey = self.journeys.get(event.missing_msg)
            if journey is not None:
                window_start = min(window_start, journey.publish_time)
        window_end = (
            event.drain_time if event.drain_time is not None else self.end_time
        )
        match = self._match_names(event)
        evidence: Dict[str, int] = {}
        for time, _index, src, dst, cause in self.retransmits:
            if time < window_start or time > window_end:
                continue
            if match is not None and src not in match and dst not in match:
                continue
            evidence[cause] = evidence.get(cause, 0) + 1
        for time, node in self.failovers:
            if window_start <= time <= window_end:
                name = repr(("seq", node))
                if match is None or name in match:
                    evidence["failover_replay"] = (
                        evidence.get("failover_replay", 0) + 1
                    )
        for time, src, dst, _attempts in self.link_failures:
            if time < window_start or time > window_end:
                continue
            if match is not None and src not in match and dst not in match:
                continue
            evidence[CAUSE_LINK_FAILURE] = evidence.get(CAUSE_LINK_FAILURE, 0) + 1
        for begin, end, _epoch in self.epoch_switches:
            # A stall overlapping a fence-drain window is (absent stronger
            # fault evidence) the reconfiguration itself: the fence holds
            # the space closed until every member catches up.
            if begin <= window_end and end >= window_start:
                evidence[CAUSE_EPOCH_SWITCH] = (
                    evidence.get(CAUSE_EPOCH_SWITCH, 0) + 1
                )
        event.evidence = evidence
        event.cause = self._verdict(event, evidence)

    def _verdict(self, event: BufferEvent, evidence: Dict[str, int]) -> str:
        if not event.resolved and evidence.get(CAUSE_LINK_FAILURE):
            # The predecessor (or its delivery copy) was abandoned for
            # good — the gap is permanent, not a slow retransmission.
            return CAUSE_LINK_FAILURE
        for cause in CAUSE_PRIORITY:
            if evidence.get(cause):
                return cause
        return CAUSE_IN_FLIGHT

    # -- queries -----------------------------------------------------------

    def journey(self, msg_id: int) -> Optional[Journey]:
        """The reconstructed journey of one message, if it was published."""
        return self.journeys.get(msg_id)

    def stalls(self, threshold: float = 0.0) -> List[BufferEvent]:
        """Buffer events whose hold-back wait met ``threshold`` ms.

        Never-drained events always qualify — an unresolved gap is the
        worst stall there is.  Sorted by (buffer time, host, msg).
        """
        out = [
            event
            for event in self.buffer_events
            if not event.resolved
            or (event.waited is not None and event.waited >= threshold)
        ]
        out.sort(key=lambda e: (e.time, e.host, e.msg_id))
        return out

    def holdback_history(self, host: int) -> List[Tuple[float, int]]:
        """Hold-back occupancy steps ``(time, depth)`` for one receiver.

        Rebuilt from buffer/drain records, so it matches the live
        ``on_occupancy`` gauge stream for the same run.
        """
        deltas = sorted(self._occupancy.get(host, []), key=lambda d: (d[0], d[1]))
        history: List[Tuple[float, int]] = []
        depth = 0
        for time, _index, delta in deltas:
            depth += delta
            history.append((time, depth))
        return history

    def waits_edges(self) -> List[Dict[str, Any]]:
        """Who-waited-on-whom: one edge per buffer event.

        ``waiter`` waited for ``on`` (the exact missing predecessor when
        reconstructable, else the arrival that released it) at
        ``host``, blocked on ``blocked_on``/``expected_seq``.
        """
        edges: List[Dict[str, Any]] = []
        for event in sorted(
            self.buffer_events, key=lambda e: (e.time, e.host, e.msg_id)
        ):
            on = event.missing_msg
            if on is None:
                on = event.unblocked_by
            edges.append(
                {
                    "waiter": event.msg_id,
                    "on": on,
                    "host": event.host,
                    "blocked_on": event.blocked_on,
                    "expected_seq": event.expected_seq,
                    "waited": event.waited,
                    "cause": event.cause,
                }
            )
        return edges

    def waits_to_json(self) -> Dict[str, Any]:
        """JSON document of the causal wait graph (nodes + edges)."""
        edges = self.waits_edges()
        nodes = sorted(
            {e["waiter"] for e in edges}
            | {e["on"] for e in edges if e["on"] is not None}
        )
        return {"messages": nodes, "waits": edges}

    def stall_report(self, threshold: float = 0.0) -> Dict[str, Any]:
        """JSON-able stall summary for one run (deterministic ordering)."""
        stalls = self.stalls(threshold)
        by_cause: Dict[str, int] = {}
        for event in self.buffer_events:
            assert event.cause is not None  # attribution ran in __init__
            by_cause[event.cause] = by_cause.get(event.cause, 0) + 1
        return {
            "threshold_ms": threshold,
            "messages": sum(1 for j in self.journeys.values() if not j.is_fence),
            "fences": sum(1 for j in self.journeys.values() if j.is_fence),
            "buffer_events": len(self.buffer_events),
            "unresolved": sum(1 for e in self.buffer_events if not e.resolved),
            "by_cause": {k: by_cause[k] for k in sorted(by_cause)},
            "stalls": [event.to_dict() for event in stalls],
        }


# -- rendering --------------------------------------------------------------


def render_journey(journey: Journey) -> str:
    """Text timeline of one message's end-to-end journey."""
    lines = [
        f"message {journey.msg_id}: group {journey.group}, "
        f"sender host {journey.sender}, published t={journey.publish_time:.3f}"
    ]
    for event in journey.atom_events:
        if event.action == "pass":
            what = "pass-through"
        else:
            parts = []
            if event.group_seq is not None:
                parts.append(f"group_seq={event.group_seq}")
            if event.seq is not None:
                parts.append(f"seq={event.seq}")
            what = "stamped " + ", ".join(parts)
        lines.append(
            f"  t={event.time:.3f}  node {event.node}  {event.atom}  {what}"
        )
    if journey.distribute_time is not None:
        lines.append(
            f"  t={journey.distribute_time:.3f}  distribute from node "
            f"{journey.distribute_node} to {len(journey.legs)} receiver(s)"
        )
    for host, leg in sorted(journey.legs.items()):
        if leg.buffer is None:
            delivered = (
                f"delivered t={leg.deliver_time:.3f}"
                if leg.deliver_time is not None
                else "never delivered"
            )
            lines.append(f"  host {host}: arrived and {delivered} (no hold-back)")
            continue
        event = leg.buffer
        head = (
            f"  host {host}: arrived t={event.time:.3f}, buffered on "
            f"{event.blocked_on} expecting seq {event.expected_seq} "
            f"(carries {event.have_seq})"
        )
        if event.resolved:
            assert event.drain_time is not None and event.waited is not None
            head += (
                f"; drained t={event.drain_time:.3f} by message "
                f"{event.unblocked_by} after {event.waited:.3f} ms "
                f"[{event.cause}]"
            )
        else:
            head += f"; NEVER drained [{event.cause}]"
        lines.append(head)
        if event.missing_msg is not None:
            lines.append(
                f"           missing predecessor: message {event.missing_msg}"
            )
    for host in sorted(journey.legs):
        breakdown = journey.breakdown(host)
        if breakdown is None:
            continue
        lines.append(
            f"  host {host} latency: total {breakdown['total']:.3f} = "
            f"propagation {breakdown['propagation']:.3f} + "
            f"sequencing {breakdown['sequencing']:.3f} + "
            f"holdback {breakdown['holdback']:.3f}"
        )
    return "\n".join(lines)


def render_stalls(report: Dict[str, Any]) -> str:
    """Text rendering of :meth:`JourneyIndex.stall_report`."""
    lines = [
        f"{report['messages']} message(s), {report['buffer_events']} buffer "
        f"event(s), {report['unresolved']} unresolved, threshold "
        f"{report['threshold_ms']:.1f} ms"
    ]
    if report["by_cause"]:
        causes = ", ".join(
            f"{cause}={count}" for cause, count in report["by_cause"].items()
        )
        lines.append(f"buffer events by cause: {causes}")
    for stall in report["stalls"]:
        waited = (
            f"waited {stall['waited']:.3f} ms"
            if stall["waited"] is not None
            else "never drained"
        )
        missing = (
            f" (missing message {stall['missing_msg']})"
            if stall["missing_msg"] is not None
            else ""
        )
        lines.append(
            f"  t={stall['time']:.3f} host {stall['host']} message "
            f"{stall['msg']} blocked on {stall['blocked_on']} seq "
            f"{stall['expected_seq']}{missing}: {waited} [{stall['cause']}]"
        )
    if not report["stalls"]:
        lines.append("  no stalls at this threshold")
    return "\n".join(lines)


def waits_to_dot(index: JourneyIndex) -> str:
    """Graphviz digraph of the who-waited-on-whom dependency graph.

    One node per message involved in a wait; one edge per buffer event,
    labelled with the receiver, the blocking pair, and the wait.
    """
    doc = index.waits_to_json()
    lines = ["digraph waits {", "  rankdir=LR;", "  node [shape=box];"]
    for msg in doc["messages"]:
        lines.append(f'  m{msg} [label="m{msg}"];')
    for edge in doc["waits"]:
        if edge["on"] is None:
            continue
        waited = (
            f"{edge['waited']:.2f}ms" if edge["waited"] is not None else "stuck"
        )
        label = (
            f"h{edge['host']}: {edge['blocked_on']}#{edge['expected_seq']} "
            f"{waited} [{edge['cause']}]"
        )
        lines.append(f'  m{edge["waiter"]} -> m{edge["on"]} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
