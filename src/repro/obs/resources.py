"""Process-level resource sampling: peak RSS and GC pauses.

Both samplers degrade to no-ops on platforms without the underlying
facility (``resource`` is POSIX-only; ``gc.callbacks`` is CPython), so
callers never need platform branches: :func:`peak_rss_bytes` returns
``None`` when unknown, and a :class:`GcPauseSampler` constructed where
callbacks are unavailable simply reports zeros.

:func:`register_process_collectors` mirrors both into a
:class:`~repro.obs.registry.MetricsRegistry` as pull collectors, so
``repro trace run --metrics`` and the bench harness export the same
numbers through the same pipeline.
"""

import gc
import sys
from typing import Optional

from repro.obs.profiler import read_wall_clock
from repro.obs.registry import MetricsRegistry

try:  # POSIX only; Windows has no resource module
    import resource as _resource
except ImportError:  # pragma: no cover - platform without getrusage
    _resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalized to bytes.  Returns ``None`` where ``getrusage`` is
    unavailable.  The value is a process-lifetime high-water mark — it
    never decreases, so per-workload readings in a long process report
    the peak *so far*, not the workload's own footprint.
    """
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


class GcPauseSampler:
    """Counts and times garbage-collection pauses via ``gc.callbacks``.

    The callback pair brackets each collection with two wall-clock reads
    (through the profiler's sampling shim), accumulating pause count,
    total pause seconds, and objects collected.  Where ``gc.callbacks``
    does not exist the sampler is inert: :attr:`supported` is false and
    every figure stays zero.

    Use as a context manager or call :meth:`install` / :meth:`uninstall`.
    """

    def __init__(self) -> None:
        self.supported = hasattr(gc, "callbacks")
        self.pauses = 0
        self.pause_seconds = 0.0
        self.collected_objects = 0
        self._started: Optional[float] = None
        self._installed = False

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._started = read_wall_clock()
        elif self._started is not None:
            self.pause_seconds += read_wall_clock() - self._started
            self.pauses += 1
            self.collected_objects += int(info.get("collected", 0))
            self._started = None

    def install(self) -> "GcPauseSampler":
        """Start observing collections (idempotent)."""
        if self.supported and not self._installed:
            gc.callbacks.append(self._on_gc)
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Stop observing collections (idempotent)."""
        if self._installed:
            try:
                gc.callbacks.remove(self._on_gc)
            except ValueError:
                pass
            self._installed = False

    def __enter__(self) -> "GcPauseSampler":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    def to_dict(self) -> dict:
        """JSON-able snapshot (the bench report's ``gc`` section)."""
        return {
            "supported": self.supported,
            "pauses": self.pauses,
            "pause_s": self.pause_seconds,
            "collected_objects": self.collected_objects,
        }


def gc_collections_total() -> int:
    """Collections run so far across all generations (process lifetime)."""
    try:
        return sum(int(s.get("collections", 0)) for s in gc.get_stats())
    except (AttributeError, TypeError):  # pragma: no cover - non-CPython
        return 0


def register_process_collectors(
    registry: MetricsRegistry, sampler: Optional[GcPauseSampler] = None
) -> None:
    """Mirror peak RSS and GC figures into ``registry`` at collect time.

    Safe with a disabled registry (``register_collector`` is a no-op).
    Pass the :class:`GcPauseSampler` observing the run to export pause
    counts and seconds alongside the lifetime collection total.
    """

    def collect(reg: MetricsRegistry) -> None:
        rss = peak_rss_bytes()
        if rss is not None:
            reg.gauge(
                "repro_process_peak_rss_bytes",
                "peak resident set size of the process",
            ).set_max(rss)
        reg.counter(
            "repro_gc_collections",
            "garbage collections across all generations (process lifetime)",
        ).set_total(gc_collections_total())
        if sampler is not None:
            reg.counter(
                "repro_gc_pauses", "GC pauses observed by the sampler"
            ).set_total(sampler.pauses)
            reg.counter(
                "repro_gc_pause_seconds", "wall seconds spent in observed GC pauses"
            ).set_total(sampler.pause_seconds)

    registry.register_collector(collect)


__all__ = [
    "GcPauseSampler",
    "gc_collections_total",
    "peak_rss_bytes",
    "register_process_collectors",
]
