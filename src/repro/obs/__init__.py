"""Observability for the sequencing pipeline.

The package has four parts:

* :mod:`repro.obs.registry` — ``Counter``/``Gauge``/``Histogram`` instruments
  behind a :class:`~repro.obs.registry.MetricsRegistry` that is near-zero-cost
  when disabled (call sites hold no-op null instruments).
* :mod:`repro.obs.spans` — reconstruct a per-message lifecycle span
  (``publish -> ingress -> sequencing hops -> distribution -> deliver``) from
  trace records, giving a per-phase latency breakdown per message and per
  group.
* :mod:`repro.obs.exporters` — dump traces and metrics as JSONL,
  Prometheus-style text, and Chrome trace-event JSON (Perfetto-loadable).
* :mod:`repro.obs.forensics` — the flight recorder's analysis side: rebuild
  per-message journeys and per-receiver hold-back histories from trace
  records (live or JSONL), explain every deliver-or-buffer decision with
  its blocking ``(atom, expected_seq)`` gap, and attribute stalls to loss
  / outage / peer_down / failover replay / in-flight by joining the fault
  records.  Surfaced as the ``repro explain`` CLI subcommand.
* :mod:`repro.obs.hooks` — wiring that attaches a registry to a running
  :class:`~repro.core.protocol.OrderingFabric` and its simulator.
* :mod:`repro.obs.profiler` — the hot-path phase profiler: exclusive
  wall-time attribution (dispatch / sequencing / delivery / trace) with
  deterministic per-kind dispatch counts and measured self-cost.
* :mod:`repro.obs.bench` — the ``repro bench`` harness: fixed-seed
  workload suites emitting schema-versioned ``BENCH_*.json`` reports and
  the regression-gating comparison between two of them.
* :mod:`repro.obs.resources` — peak-RSS and GC-pause sampling with no-op
  fallbacks, exported through the registry.

See ``docs/OBSERVABILITY.md`` for the full model and overhead notes.
"""

from repro.obs.forensics import (
    BufferEvent,
    Journey,
    JourneyIndex,
    render_journey,
    render_stalls,
    waits_to_dot,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    log_buckets,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    PROFILE_PHASES,
    PhaseProfiler,
    maybe_profiler,
)
from repro.obs.resources import GcPauseSampler, peak_rss_bytes
from repro.obs.spans import MessageSpan, PHASES, build_spans, phase_breakdown_by_group

__all__ = [
    "BufferEvent",
    "Counter",
    "Gauge",
    "GcPauseSampler",
    "Histogram",
    "Journey",
    "JourneyIndex",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "PROFILE_PHASES",
    "PhaseProfiler",
    "log_buckets",
    "maybe_profiler",
    "MessageSpan",
    "PHASES",
    "build_spans",
    "peak_rss_bytes",
    "phase_breakdown_by_group",
    "render_journey",
    "render_stalls",
    "waits_to_dot",
]
