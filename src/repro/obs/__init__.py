"""Observability for the sequencing pipeline.

The package has four parts:

* :mod:`repro.obs.registry` — ``Counter``/``Gauge``/``Histogram`` instruments
  behind a :class:`~repro.obs.registry.MetricsRegistry` that is near-zero-cost
  when disabled (call sites hold no-op null instruments).
* :mod:`repro.obs.spans` — reconstruct a per-message lifecycle span
  (``publish -> ingress -> sequencing hops -> distribution -> deliver``) from
  trace records, giving a per-phase latency breakdown per message and per
  group.
* :mod:`repro.obs.exporters` — dump traces and metrics as JSONL,
  Prometheus-style text, and Chrome trace-event JSON (Perfetto-loadable).
* :mod:`repro.obs.forensics` — the flight recorder's analysis side: rebuild
  per-message journeys and per-receiver hold-back histories from trace
  records (live or JSONL), explain every deliver-or-buffer decision with
  its blocking ``(atom, expected_seq)`` gap, and attribute stalls to loss
  / outage / peer_down / failover replay / in-flight by joining the fault
  records.  Surfaced as the ``repro explain`` CLI subcommand.
* :mod:`repro.obs.hooks` — wiring that attaches a registry to a running
  :class:`~repro.core.protocol.OrderingFabric` and its simulator.

See ``docs/OBSERVABILITY.md`` for the full model and overhead notes.
"""

from repro.obs.forensics import (
    BufferEvent,
    Journey,
    JourneyIndex,
    render_journey,
    render_stalls,
    waits_to_dot,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    log_buckets,
)
from repro.obs.spans import MessageSpan, PHASES, build_spans, phase_breakdown_by_group

__all__ = [
    "BufferEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "Journey",
    "JourneyIndex",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "log_buckets",
    "MessageSpan",
    "PHASES",
    "build_spans",
    "phase_breakdown_by_group",
    "render_journey",
    "render_stalls",
    "waits_to_dot",
]
