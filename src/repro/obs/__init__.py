"""Observability for the sequencing pipeline.

The package has four parts:

* :mod:`repro.obs.registry` — ``Counter``/``Gauge``/``Histogram`` instruments
  behind a :class:`~repro.obs.registry.MetricsRegistry` that is near-zero-cost
  when disabled (call sites hold no-op null instruments).
* :mod:`repro.obs.spans` — reconstruct a per-message lifecycle span
  (``publish -> ingress -> sequencing hops -> distribution -> deliver``) from
  trace records, giving a per-phase latency breakdown per message and per
  group.
* :mod:`repro.obs.exporters` — dump traces and metrics as JSONL,
  Prometheus-style text, and Chrome trace-event JSON (Perfetto-loadable).
* :mod:`repro.obs.hooks` — wiring that attaches a registry to a running
  :class:`~repro.core.protocol.OrderingFabric` and its simulator.

See ``docs/OBSERVABILITY.md`` for the full model and overhead notes.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    log_buckets,
)
from repro.obs.spans import MessageSpan, PHASES, build_spans, phase_breakdown_by_group

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "log_buckets",
    "MessageSpan",
    "PHASES",
    "build_spans",
    "phase_breakdown_by_group",
]
