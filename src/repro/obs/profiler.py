"""Low-overhead self-profiling of the simulator hot path.

A :class:`PhaseProfiler` attributes the simulator's *wall-clock* time to
the phases of the pipeline that spend it:

* ``dispatch`` — event-loop callback execution (heap pop to return),
  exclusive of the deeper phases below;
* ``sequencing`` — sequencing-node atom visits, including forwarding and
  distribution sends (:meth:`SequencingNodeProcess.process_at`);
* ``delivery`` — the receiver-side deliver-or-buffer decision and
  hold-back drain (:meth:`HostProcess.handle`);
* ``trace`` — observability's own cost: :meth:`Trace.record` body plus
  every trace subscriber (the metrics hooks run there).

Phases nest (``sequencing`` runs inside ``dispatch``; ``trace`` inside
either), so the profiler keeps a stack and accumulates **exclusive** time:
a phase is charged only for the time not already charged to a deeper
phase.  Summing ``phase_exclusive_s`` therefore never double-counts.

Alongside wall time — which varies run to run — the profiler counts
per-event-kind dispatches and per-phase entries.  The counts are a pure
function of the simulation seed, which is what the bench harness's
determinism gate checks, and what lets two ``BENCH_*.json`` files from
different machines be compared at all.

The profiler never feeds the simulation: it reads the wall clock, bumps
Python ints and floats, and nothing else, so enabling it cannot change
simulation outcomes.  The cost of the profiler itself is measured: every
``enter``/``exit`` pair costs two clock reads, the per-pair cost is
calibrated at construction, and :meth:`estimated_overhead_s` reports the
total so ``repro bench`` can say what ``repro.obs`` costs.

Wall-clock reads are confined to
:func:`repro.runtime.wallclock.read_wall_clock` — the one sanctioned
sampling shim, re-exported here for compatibility.  This module is listed
in simlint's simulation-critical scope, so any direct wall-clock read
here (or in :mod:`repro.obs.bench`) is an SL101 error.

:data:`NULL_PROFILER` is the disabled-mode null object, matching
:data:`repro.obs.registry.NULL_REGISTRY`: every method is a no-op, so call
sites can hold a profiler unconditionally.  The hot-path call sites in
:mod:`repro.sim` / :mod:`repro.core` additionally guard on ``enabled`` so
the disabled path costs one attribute check, like ``trace.enabled``.
"""

from typing import Any, Callable, Dict, List, Optional, Tuple

# The sanctioned sampling shim moved to the transport-neutral runtime
# layer; re-exported here so existing ``from repro.obs.profiler import
# read_wall_clock`` imports keep working (deprecated alias).
from repro.runtime.wallclock import read_wall_clock

__all__ = [
    "NULL_PROFILER",
    "PROFILE_PHASES",
    "PhaseProfiler",
    "read_wall_clock",
]

#: Profiled phase names, in reporting order.
PROFILE_PHASES = ("dispatch", "sequencing", "delivery", "trace")

#: enter/exit pairs timed at construction to estimate the clock cost
CALIBRATION_PAIRS = 2000


class PhaseProfiler:
    """Attributes hot-path wall time to pipeline phases (see module doc).

    Parameters
    ----------
    sample_every:
        When positive, every Nth event dispatch appends a cumulative
        ``(virtual_time, {phase: seconds})`` sample to :attr:`samples` —
        the series behind the Chrome-trace counter track and the
        Prometheus phase gauges.  The *number* of samples is deterministic
        (it depends only on the dispatch count); the values are wall time.
    """

    __slots__ = (
        "enabled",
        "phase_exclusive_s",
        "phase_counts",
        "dispatch_by_kind",
        "sample_every",
        "samples",
        "clock_pairs",
        "seconds_per_clock_pair",
        "_stack",
        "_dispatches_since_sample",
    )

    def __init__(self, sample_every: int = 4096):
        self.enabled = True
        #: exclusive wall seconds per phase (nested phases subtracted)
        self.phase_exclusive_s: Dict[str, float] = {p: 0.0 for p in PROFILE_PHASES}
        #: times each phase was entered (deterministic per seed)
        self.phase_counts: Dict[str, int] = {p: 0 for p in PROFILE_PHASES}
        #: executed-callback counts keyed by callback qualname
        self.dispatch_by_kind: Dict[str, int] = {}
        self.sample_every = sample_every
        #: cumulative (virtual_time, {phase: exclusive seconds}) samples
        self.samples: List[Tuple[float, Dict[str, float]]] = []
        #: enter/exit pairs executed — the profiler's own work
        self.clock_pairs = 0
        #: calibrated cost of one enter/exit pair on this machine
        self.seconds_per_clock_pair = _calibrate_clock_pair()
        # stack frames: [phase, start, child_seconds]
        self._stack: List[List[Any]] = []
        self._dispatches_since_sample = 0

    # -- hot-path API ----------------------------------------------------

    def enter(self, phase: str) -> None:
        """Begin attributing wall time to ``phase`` (re-entrant, stacked)."""
        self._stack.append([phase, read_wall_clock(), 0.0])

    def exit(self) -> None:
        """End the innermost phase, charging it its exclusive time."""
        phase, start, child_s = self._stack.pop()
        elapsed = read_wall_clock() - start
        self.phase_exclusive_s[phase] += elapsed - child_s
        self.phase_counts[phase] += 1
        self.clock_pairs += 1
        if self._stack:
            self._stack[-1][2] += elapsed

    def dispatch_begin(self, callback: Callable) -> None:
        """Count and start timing one event-loop callback execution."""
        kind = getattr(callback, "__qualname__", None) or type(callback).__name__
        by_kind = self.dispatch_by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        self.enter("dispatch")

    def dispatch_end(self, virtual_now: float) -> None:
        """Finish timing a callback; emit a cumulative sample every Nth."""
        self.exit()
        if self.sample_every > 0:
            self._dispatches_since_sample += 1
            if self._dispatches_since_sample >= self.sample_every:
                self._dispatches_since_sample = 0
                self.take_sample(virtual_now)

    # -- reporting -------------------------------------------------------

    def take_sample(self, virtual_now: float) -> None:
        """Append a cumulative phase-time sample at ``virtual_now``."""
        self.samples.append((virtual_now, dict(self.phase_exclusive_s)))

    def dispatches(self) -> int:
        """Total callbacks executed under the profiler."""
        return sum(self.dispatch_by_kind.values())

    def estimated_overhead_s(self) -> float:
        """Wall seconds the profiler itself cost (calibrated estimate)."""
        return self.clock_pairs * self.seconds_per_clock_pair

    def counts(self) -> Dict[str, Any]:
        """The deterministic slice of the profile: counts only, no timings.

        Two same-seed runs must produce identical ``counts()`` — the bench
        harness and the determinism tests rely on it.
        """
        return {
            "phase_counts": {p: self.phase_counts[p] for p in PROFILE_PHASES},
            "dispatch_by_kind": dict(sorted(self.dispatch_by_kind.items())),
            "dispatches": self.dispatches(),
            "samples": len(self.samples),
        }

    def breakdown(self) -> Dict[str, Any]:
        """Full JSON-able profile: counts plus wall-time attribution."""
        return {
            "phase_exclusive_s": {
                p: self.phase_exclusive_s[p] for p in PROFILE_PHASES
            },
            "phase_counts": {p: self.phase_counts[p] for p in PROFILE_PHASES},
            "dispatch_by_kind": dict(sorted(self.dispatch_by_kind.items())),
            "overhead": {
                "clock_pairs": self.clock_pairs,
                "seconds_per_clock_pair": self.seconds_per_clock_pair,
                "estimated_s": self.estimated_overhead_s(),
            },
        }

    def render(self) -> str:
        """Human-readable phase table (the ``repro trace --profile`` view)."""
        total = sum(self.phase_exclusive_s.values())
        lines = ["phase        excl. wall s   entries      share"]
        for phase in PROFILE_PHASES:
            seconds = self.phase_exclusive_s[phase]
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"{phase:<12} {seconds:>12.6f} {self.phase_counts[phase]:>9} "
                f"{share:>9.1%}"
            )
        lines.append(
            f"profiler overhead ~{self.estimated_overhead_s():.6f}s "
            f"({self.clock_pairs} clock pairs)"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<PhaseProfiler dispatches={self.dispatches()} "
            f"wall={sum(self.phase_exclusive_s.values()):.6f}s>"
        )


def _calibrate_clock_pair(pairs: int = CALIBRATION_PAIRS) -> float:
    """Measure the cost of one ``enter``/``exit``-style clock-read pair."""
    start = read_wall_clock()
    for _ in range(pairs):
        read_wall_clock()
        read_wall_clock()
    elapsed = read_wall_clock() - start
    return elapsed / pairs if pairs > 0 else 0.0


class _NullProfiler:
    """Disabled-mode stand-in, mirroring ``NULL_REGISTRY``'s contract.

    Every method is a no-op and every reported structure is empty, so
    fully profiled code runs essentially unprofiled.  Hot-path call sites
    still guard on :attr:`enabled` to skip even argument evaluation.
    """

    __slots__ = ()
    enabled = False
    phase_exclusive_s: Dict[str, float] = {}
    phase_counts: Dict[str, int] = {}
    dispatch_by_kind: Dict[str, int] = {}
    samples: List[Tuple[float, Dict[str, float]]] = []
    clock_pairs = 0
    seconds_per_clock_pair = 0.0

    def enter(self, phase: str) -> None:
        pass

    def exit(self) -> None:
        pass

    def dispatch_begin(self, callback: Callable) -> None:
        pass

    def dispatch_end(self, virtual_now: float) -> None:
        pass

    def take_sample(self, virtual_now: float) -> None:
        pass

    def dispatches(self) -> int:
        return 0

    def estimated_overhead_s(self) -> float:
        return 0.0

    def counts(self) -> Dict[str, Any]:
        return {}

    def breakdown(self) -> Dict[str, Any]:
        return {}

    def render(self) -> str:
        return "(profiling disabled)"


#: Shared disabled profiler: attach this when no profile was requested so
#: instrumented code needs no ``if profiler is not None`` branches.
NULL_PROFILER = _NullProfiler()


def maybe_profiler(enabled: bool, sample_every: int = 4096):
    """A :class:`PhaseProfiler` when ``enabled``, else :data:`NULL_PROFILER`."""
    return PhaseProfiler(sample_every=sample_every) if enabled else NULL_PROFILER


#: Either a real profiler or the null object — what call sites accept.
ProfilerLike = Any

__all__ = [
    "NULL_PROFILER",
    "PROFILE_PHASES",
    "PhaseProfiler",
    "ProfilerLike",
    "maybe_profiler",
    "read_wall_clock",
]
