"""Metric instruments and the registry that owns them.

Three instrument kinds cover the pipeline's needs:

* :class:`Counter` — monotonically increasing totals (messages published,
  retransmissions).  Pull-style collectors may also assign an externally
  maintained total via :meth:`Counter.set_total`.
* :class:`Gauge` — point-in-time values that can go up and down (buffer
  occupancy, in-flight packets); :meth:`Gauge.set_max` turns a gauge into a
  high-water mark.
* :class:`Histogram` — fixed log-spaced buckets plus ``sum``/``count`` and a
  high-water ``max`` (delivery latency, callback wall time).

Instruments are identified by ``(name, labels)``; asking the registry twice
for the same identity returns the same object, so call sites can cache the
instrument once and update it on the hot path.

**Disabled registries are near-zero-cost.**  A registry constructed with
``enabled=False`` (or the shared :data:`NULL_REGISTRY`) hands out a single
shared null instrument whose update methods are no-ops; the only residual
cost at an instrumented call site is one attribute lookup and an empty
method call.
"""

import bisect
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def log_buckets(
    low: float = 0.01, high: float = 10_000.0, per_decade: int = 4
) -> Tuple[float, ...]:
    """Fixed log-spaced histogram bucket upper bounds, ``low`` .. ``high``.

    The defaults span 0.01 ms to 10 s with four buckets per decade, which
    covers everything from a local IPC hop to a badly stalled hold-back
    buffer at paper scale.
    """
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got {low}, {high}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    decades = math.log10(high / low)
    steps = int(round(decades * per_decade))
    bounds = [low * 10 ** (i / per_decade) for i in range(steps + 1)]
    # Snap the final bound to `high` exactly (fp drift from the power).
    bounds[-1] = high
    return tuple(bounds)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the total with an externally maintained running count.

        For pull-style collectors that mirror a counter the protocol code
        already keeps (e.g. ``Channel.bytes_sent``); the source must be
        monotonic for the exported series to behave like a counter.
        """
        self.value = value


class Gauge:
    """A value that can move both ways; optionally a high-water mark."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if larger (high-water mark)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with ``sum``, ``count``, and high-water ``max``.

    ``buckets`` are upper bounds; an observation lands in the first bucket
    whose bound is ``>= value`` (bounds are inclusive, Prometheus ``le``
    semantics).  Observations above the last bound land in the implicit
    ``+Inf`` overflow bucket.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count", "sum", "max")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey, buckets: Sequence[float]):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing: {buckets}")
        self.name = name
        self.labels = labels
        self.buckets = ordered
        #: per-bucket (non-cumulative) counts; index len(buckets) is +Inf
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with ``+Inf``."""
        result: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.buckets, self.bucket_counts):
            running += bucket
            result.append((bound, running))
        result.append((math.inf, running + self.bucket_counts[-1]))
        return result

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the winning bucket (HDR-style);
        observations that landed in the ``+Inf`` overflow bucket are
        reported as the high-water ``max`` — the only honest bound the
        histogram still has for them.  An empty histogram reports 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        lower = 0.0
        for bound, bucket in zip(self.buckets, self.bucket_counts):
            running += bucket
            if bucket and running >= target:
                fraction = 1.0 - (running - target) / bucket
                estimate = lower + (bound - lower) * fraction
                # The true maximum is a tighter upper bound than the
                # bucket edge when every observation sits below it.
                return min(estimate, self.max) if self.max else estimate
            lower = bound
        return self.max

    def merge_counts(self, other: "Histogram") -> None:
        """Fold another histogram with the identical bucket scheme in.

        This is what makes the fixed-bucket scheme mergeable across
        nodes: per-bucket counts, ``count``, ``sum``, and ``max`` all
        combine exactly, so quantiles over the merge are as accurate as
        over a single histogram observing the union.
        """
        if tuple(other.buckets) != self.buckets:
            raise ValueError(
                f"bucket schemes differ ({len(other.buckets)} vs "
                f"{len(self.buckets)} bounds); refusing a lossy merge"
            )
        for index, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket
        self.count += other.count
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max


class _NullInstrument:
    """Shared no-op stand-in handed out by disabled registries."""

    __slots__ = ()
    kind = "null"
    name = ""
    labels: LabelKey = ()
    value = 0.0
    count = 0
    sum = 0.0
    max = 0.0
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative(self) -> List[Tuple[float, int]]:
        return []

    def quantile(self, q: float) -> float:
        return 0.0

    def merge_counts(self, other: object) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Owns instruments, collectors, and metadata for one run.

    Parameters
    ----------
    enabled:
        When ``False`` every instrument request returns the shared
        :data:`NULL_INSTRUMENT` and :meth:`collect` is a no-op, so fully
        instrumented code runs essentially uninstrumented.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, LabelKey], object] = {}
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instrument factories -------------------------------------------

    @staticmethod
    def _label_key(labels: Dict[str, object]) -> LabelKey:
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _get(self, cls, name: str, help: str, labels: Dict[str, object], **extra):
        if not self.enabled:
            return NULL_INSTRUMENT
        declared = self._types.get(name)
        if declared is None:
            self._types[name] = cls.kind
            if help:
                self._help[name] = help
        elif declared != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as {declared}, "
                f"refusing {cls.kind}"
            )
        key = (name, self._label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **extra)
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Fetch-or-create the counter ``name`` with ``labels``."""
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """Fetch-or-create the gauge ``name`` with ``labels``."""
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> Histogram:
        """Fetch-or-create the histogram ``name`` (default log buckets)."""
        return self._get(
            Histogram, name, help, labels, buckets=buckets or log_buckets()
        )

    # -- collectors and inspection --------------------------------------

    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Add a pull-style collector run by :meth:`collect` before export.

        Collectors mirror state the simulation already keeps (per-link
        bytes, buffer high-water marks) into instruments, so the hot path
        pays nothing for metrics that only matter at scrape time.
        """
        if self.enabled:
            self._collectors.append(fn)

    def collect(self) -> None:
        """Run all registered collectors (no-op when disabled)."""
        if not self.enabled:
            return
        for fn in self._collectors:
            fn(self)

    def instruments(self) -> List[object]:
        """All instruments, sorted by (name, labels) for stable export."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def get(self, name: str, **labels) -> Optional[object]:
        """Look up an existing instrument; ``None`` when absent."""
        return self._instruments.get((name, self._label_key(labels)))

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def type_of(self, name: str) -> str:
        return self._types.get(name, "untyped")

    def __len__(self) -> int:
        return len(self._instruments)


#: Shared disabled registry: attach this when no metrics were requested so
#: instrumented code needs no ``if registry is not None`` branches.
NULL_REGISTRY = MetricsRegistry(enabled=False)
