"""Bounded-memory streaming monitors over the runtime trace stream.

Where :func:`repro.check.verify_run` re-proves the RT300-class invariants
*after* a run, :class:`LiveMonitor` subscribes to the fabric's
:class:`~repro.runtime.trace.Trace` and checks them **incrementally**,
record by record, with windowed state that is evicted as soon as delivery
confirmation makes it dead:

=====  ========  ==========================================================
rule   severity  fires when
=====  ========  ==========================================================
LM300  error     a member delivers a group's messages in a different order
                 than the order agreed by the members ahead of it (the
                 streaming form of RT300/RT305's per-group agreement)
LM301  error     a host delivers the same message twice while the message
                 is still in its confirmation window (streaming RT301)
LM302  error     a host's deliveries for a group skip or repeat the
                 ingress-assigned group sequence number (gap = the
                 streaming precursor of RT302/RT303)
LM303  warning   a message sits in a hold-back buffer past the stall
                 threshold; the alert attaches the forensics cause
                 vocabulary (loss / outage / peer_down / failover_replay /
                 epoch_switch / link_failure / in_flight) from the fault
                 records observed inside the stall window
LM304  error     a host delivers one publisher's messages to a group out
                 of publication order (streaming RT304)
=====  ========  ==========================================================

Memory is bounded by the *in-flight window*, not the run length: per-group
order windows are trimmed once every member passed a prefix, per-message
state (group-sequence stamps, duplicate-detection sets, delivery counts)
is dropped once every group member delivered the message, and fault
evidence lives in a fixed-size ring.  A duplicate arriving *after* its
message left the confirmation window is therefore only caught by the
post-hoc audit — the price of bounded state, and why campaigns run both.

With ``retain_audit=True`` (the default, used by campaigns and CI) the
monitor additionally accumulates a full :class:`repro.check.RunView` from
the same records and :meth:`final_findings` runs the *identical*
``verify_run`` predicates over it — so the live verdicts and the post-hoc
fabric audit cannot drift; the chaos campaign asserts they are equal.

Determinism: the monitor is a pure function of the record stream.  On the
sim backend a fixed seed reproduces the stream exactly, so the alert feed
is byte-identical across runs (the CI ``live-monitor`` job compares the
serialized feeds with ``cmp``).
"""

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.check.findings import Finding
from repro.check.invariants import (
    DeliveredEntry,
    PublishedEntry,
    RunView,
    verify_run,
)
from repro.obs.forensics import (
    CAUSE_IN_FLIGHT,
    CAUSE_LINK_FAILURE,
    CAUSE_PRIORITY,
)
from repro.obs.live.latency import PhaseLatencyTracker
from repro.obs.registry import MetricsRegistry
from repro.runtime.trace import TraceRecord

__all__ = ["LiveMonitor", "MonitorAlert", "MONITOR_RULES", "STALL_THRESHOLD_MS"]

#: rule id -> (severity, one-line description) — the docs table source.
MONITOR_RULES: Dict[str, Tuple[str, str]] = {
    "LM300": ("error", "group delivery order diverges from the agreed order"),
    "LM301": ("error", "duplicate delivery inside the confirmation window"),
    "LM302": ("error", "group sequence number gap or repeat at a receiver"),
    "LM303": ("warning", "hold-back stall past threshold, cause attributed"),
    "LM304": ("error", "publisher FIFO violated at a receiver"),
}

#: Default virtual-ms a message may sit buffered before LM303 fires.
STALL_THRESHOLD_MS = 50.0


@dataclass(frozen=True)
class MonitorAlert:
    """One streaming-monitor verdict, in stream order."""

    #: virtual time the monitor fired (not necessarily the fault time)
    time: float
    rule: str
    severity: str
    message: str
    anchor: str
    #: forensics cause verdict (LM303 only)
    cause: Optional[str] = None
    #: fault-evidence counts behind ``cause`` (LM303 only)
    evidence: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "anchor": self.anchor,
            "cause": self.cause,
            "evidence": dict(self.evidence),
        }


class LiveMonitor:
    """Streaming RT300-class invariant monitoring over a live trace.

    Parameters
    ----------
    node:
        Label for this monitor's snapshots (one per service node).
    stall_threshold_ms:
        Virtual-ms a message may sit in a hold-back buffer before LM303
        raises a stall warning.
    registry:
        Metrics registry the phase-latency histograms register with; a
        private enabled registry when omitted.
    retain_audit:
        Also accumulate the full :class:`~repro.check.RunView` so
        :meth:`final_findings` can run the post-hoc predicates.  Turn off
        for indefinitely-running services where only the windowed
        monitors (and the latency plane) should retain state.
    max_alerts:
        Hard cap on retained alerts; further alerts are counted in
        :attr:`alerts_dropped` but not stored.
    fault_window:
        Size of the fault-evidence ring used for LM303 cause attribution.
    """

    def __init__(
        self,
        node: str = "local",
        stall_threshold_ms: float = STALL_THRESHOLD_MS,
        registry: Optional[MetricsRegistry] = None,
        retain_audit: bool = True,
        max_alerts: int = 10_000,
        fault_window: int = 512,
    ):
        self.node = node
        self.stall_threshold_ms = stall_threshold_ms
        self.retain_audit = retain_audit
        self.max_alerts = max_alerts
        self.latency = PhaseLatencyTracker(registry)
        self.alerts: List[MonitorAlert] = []
        self.alerts_dropped = 0
        self.membership: Dict[int, FrozenSet[int]] = {}
        self.published_total = 0
        self.delivered_total = 0
        self.now = 0.0
        self.epoch: Optional[int] = None
        self._trace: Optional[Any] = None
        self._fault_window = fault_window
        self._reset_stream_state()
        self._reset_audit_state()

    # -- lifecycle ---------------------------------------------------------

    def attach(self, fabric: Any) -> None:
        """Adopt a fabric's membership and subscribe to its trace.

        Each attach starts a fresh monitoring window (streaming state and,
        when retained, the audit view reset); cumulative alert and latency
        state persists.  Re-attach on every epoch's fabric — agreement
        with the per-epoch post-hoc audit then holds epoch by epoch.
        """
        self.adopt_membership(
            {
                group: frozenset(fabric.membership.members(group))
                for group in fabric.membership.groups()
            }
        )
        if self._trace is not None:
            self._trace.unsubscribe(self.observe)
        self._reset_stream_state()
        self._reset_audit_state()
        self._trace = fabric.trace
        fabric.trace.subscribe(self.observe)

    def detach(self) -> None:
        """Unsubscribe from the currently attached trace (idempotent)."""
        if self._trace is not None:
            self._trace.unsubscribe(self.observe)
            self._trace = None

    def adopt_membership(
        self, membership: Dict[int, FrozenSet[int]]
    ) -> None:
        """Set the group->members map the monitors check against."""
        self.membership = dict(membership)

    def _reset_stream_state(self) -> None:
        #: group -> agreed delivery order window (trimmed prefix)
        self._order_window: Dict[int, List[int]] = {}
        #: group -> how many window entries were already trimmed
        self._order_base: Dict[int, int] = {}
        #: (group, host) -> deliveries seen for the group at the host
        self._order_ptr: Dict[Tuple[int, int], int] = {}
        #: host -> messages inside the duplicate-confirmation window
        self._seen: Dict[int, Set[int]] = {}
        #: msg -> deliveries counted toward full-group confirmation
        self._deliver_count: Dict[int, int] = {}
        #: msg -> ingress-assigned group sequence number
        self._msg_group_seq: Dict[int, int] = {}
        #: (host, group) -> next expected group sequence number
        self._next_group_seq: Dict[Tuple[int, int], Optional[int]] = {}
        #: (host, sender, group) -> last in-order msg id delivered
        self._fifo_last: Dict[Tuple[int, int, int], int] = {}
        #: (host, msg) -> buffering time, for stall detection
        self._buffered: Dict[Tuple[int, int], float] = {}
        #: min-heap of (deadline, host, msg) stall candidates
        self._stall_heap: List[Tuple[float, int, int]] = []
        self._stall_alerted: Set[Tuple[int, int]] = set()
        #: host -> current hold-back depth (buffer minus drain)
        self._holdback_depth: Dict[int, int] = {}
        #: fault-evidence ring: (time, cause)
        self._recent_faults: Deque[Tuple[float, str]] = deque(
            maxlen=self._fault_window
        )
        #: epoch-switch windows: (begin, end-or-None), bounded
        self._switch_windows: Deque[Tuple[float, Optional[float]]] = deque(
            maxlen=16
        )
        #: group -> (expected members, delivered members) of the live fence
        self._fence_expected: Dict[int, FrozenSet[int]] = {}
        self._fence_delivered: Dict[int, Set[int]] = {}

    def _reset_audit_state(self) -> None:
        self._view_delivered: Dict[int, List[DeliveredEntry]] = {}
        self._view_published: Dict[int, PublishedEntry] = {}

    # -- the stream --------------------------------------------------------

    def observe(self, record: TraceRecord) -> None:
        """Consume one trace record (the trace-subscriber entry point)."""
        self.now = record.time
        kind = record.kind
        if kind == "deliver":
            self._on_deliver(record)
        elif kind == "buffer":
            self._on_buffer(record)
        elif kind == "drain":
            self._on_drain(record)
        elif kind == "publish":
            self._on_publish(record)
        elif kind == "distribute":
            self.latency.observe(record)
        elif kind == "atom_seq":
            group_seq = record.data.get("group_seq")
            if group_seq is not None:
                self._msg_group_seq[int(record.data["msg"])] = int(group_seq)
        elif kind == "retransmit":
            self._recent_faults.append((record.time, str(record.data["cause"])))
        elif kind == "link_failure":
            self._recent_faults.append((record.time, CAUSE_LINK_FAILURE))
        elif kind == "epoch_fence":
            self._on_epoch_fence(record)
        elif kind == "epoch_switch":
            self._on_epoch_switch(record)
        self._expire_stalls(record.time)

    def _on_publish(self, record: TraceRecord) -> None:
        self.published_total += 1
        self.latency.observe(record)
        if self.retain_audit:
            msg = int(record.data["msg"])
            self._view_published[msg] = PublishedEntry(
                msg,
                int(record.data["group"]),
                int(record.data["sender"]),
                record.time,
            )

    def _on_deliver(self, record: TraceRecord) -> None:
        data = record.data
        host = int(data["host"])
        msg = int(data["msg"])
        group = int(data["group"])
        self.delivered_total += 1
        self.latency.observe(record)
        if self.retain_audit:
            self._view_delivered.setdefault(host, []).append(
                DeliveredEntry(
                    msg, group, int(data["sender"]), record.time
                )
            )
        # LM301: duplicate inside the confirmation window.
        seen = self._seen.setdefault(host, set())
        if msg in seen:
            self._alert(
                record.time,
                "LM301",
                f"host {host} delivered message {msg} again "
                f"(group {group})",
                f"host {host}",
            )
        else:
            seen.add(msg)
        # LM302: ingress group-sequence contiguity.
        self._check_group_seq(record.time, host, group, msg)
        # LM304: publisher FIFO.
        fifo_key = (host, int(data["sender"]), group)
        previous = self._fifo_last.get(fifo_key, -1)
        if msg < previous:
            self._alert(
                record.time,
                "LM304",
                f"host {host} delivered message {msg} after {previous} "
                f"from the same publisher {data['sender']} in group {group}",
                f"host {host}",
            )
        else:
            self._fifo_last[fifo_key] = msg
        # LM300: agreement with the window's agreed order.
        self._check_order_window(record.time, host, group, msg)
        self._confirm_delivery(msg, group)

    def _check_group_seq(
        self, time: float, host: int, group: int, msg: int
    ) -> None:
        group_seq = self._msg_group_seq.get(msg)
        key = (host, group)
        if group_seq is None:
            # Unknown stamp (e.g. trace attached mid-run): resynchronize.
            self._next_group_seq[key] = None
            return
        expected = self._next_group_seq.get(key)
        if expected is not None and group_seq != expected:
            what = "skipped" if group_seq > expected else "repeated"
            self._alert(
                time,
                "LM302",
                f"host {host} {what} group {group} sequence numbers: "
                f"delivered #{group_seq} where #{expected} was next "
                f"(message {msg})",
                f"host {host}",
            )
        self._next_group_seq[key] = group_seq + 1

    def _check_order_window(
        self, time: float, host: int, group: int, msg: int
    ) -> None:
        members = self.membership.get(group)
        if not members or host not in members:
            return
        window = self._order_window.setdefault(group, [])
        base = self._order_base.setdefault(group, 0)
        position = self._order_ptr.get((group, host), 0)
        index = position - base
        if index == len(window):
            window.append(msg)  # this member extends the agreed order
        elif 0 <= index < len(window) and window[index] != msg:
            self._alert(
                time,
                "LM300",
                f"host {host} delivered message {msg} at group {group} "
                f"position {position} where the agreed order has "
                f"{window[index]}",
                f"group {group}",
            )
        self._order_ptr[(group, host)] = position + 1
        # Trim the prefix every member has passed (bounded window).
        slowest = min(
            self._order_ptr.get((group, member), 0) for member in members
        )
        if slowest > base:
            trim = min(slowest - base, len(window))
            if trim:
                del window[:trim]
                self._order_base[group] = base + trim

    def _confirm_delivery(self, msg: int, group: int) -> None:
        """Evict per-message state once every group member delivered."""
        members = self.membership.get(group)
        if not members:
            return
        count = self._deliver_count.get(msg, 0) + 1
        if count >= len(members):
            self._deliver_count.pop(msg, None)
            self._msg_group_seq.pop(msg, None)
            for member in members:
                seen = self._seen.get(member)
                if seen is not None:
                    seen.discard(msg)
        else:
            self._deliver_count[msg] = count

    def _on_buffer(self, record: TraceRecord) -> None:
        host = int(record.data["host"])
        msg = int(record.data["msg"])
        self._holdback_depth[host] = self._holdback_depth.get(host, 0) + 1
        self._buffered[(host, msg)] = record.time
        heapq.heappush(
            self._stall_heap,
            (record.time + self.stall_threshold_ms, host, msg),
        )

    def _on_drain(self, record: TraceRecord) -> None:
        host = int(record.data["host"])
        msg = int(record.data["msg"])
        depth = self._holdback_depth.get(host, 0) - 1
        if depth > 0:
            self._holdback_depth[host] = depth
        else:
            self._holdback_depth.pop(host, None)
        self._buffered.pop((host, msg), None)
        self._stall_alerted.discard((host, msg))
        self.latency.observe(record)

    def _expire_stalls(self, now: float) -> None:
        heap = self._stall_heap
        while heap and heap[0][0] <= now:
            _deadline, host, msg = heapq.heappop(heap)
            key = (host, msg)
            buffered_at = self._buffered.get(key)
            if buffered_at is None or key in self._stall_alerted:
                continue
            self._stall_alerted.add(key)
            cause, evidence = self._attribute(buffered_at, now)
            self._alert(
                now,
                "LM303",
                f"host {host} has buffered message {msg} for "
                f"{now - buffered_at:.1f} ms (threshold "
                f"{self.stall_threshold_ms:.1f} ms), cause: {cause}",
                f"host {host}",
                severity="warning",
                cause=cause,
                evidence=evidence,
            )

    def _attribute(
        self, since: float, until: float
    ) -> Tuple[str, Dict[str, int]]:
        """Forensics-style cause verdict for a stall window."""
        evidence: Dict[str, int] = {}
        for time, cause in self._recent_faults:
            if since <= time <= until:
                evidence[cause] = evidence.get(cause, 0) + 1
        for begin, end in self._switch_windows:
            closed = until if end is None else min(end, until)
            if begin <= until and closed >= since:
                evidence["epoch_switch"] = evidence.get("epoch_switch", 0) + 1
        for cause in CAUSE_PRIORITY:
            if evidence.get(cause):
                return cause, evidence
        if evidence.get(CAUSE_LINK_FAILURE):
            return CAUSE_LINK_FAILURE, evidence
        return CAUSE_IN_FLIGHT, evidence

    def _on_epoch_fence(self, record: TraceRecord) -> None:
        data = record.data
        group = int(data["group"])
        self.epoch = int(data["epoch"])
        if data.get("phase") == "publish":
            members = self.membership.get(group, frozenset())
            self._fence_expected[group] = members
            self._fence_delivered.setdefault(group, set())
        elif data.get("phase") == "deliver":
            host = int(data["host"])
            delivered = self._fence_delivered.setdefault(group, set())
            delivered.add(host)
            # A fence consumed a group sequence number; the check against
            # its stamp still applies, then the expectation resets for
            # whatever numbering the next epoch starts with.
            self._check_group_seq(
                record.time, host, group, int(data["msg"])
            )
            self._next_group_seq[(host, group)] = None
            expected = self._fence_expected.get(group)
            if expected is not None and delivered >= expected:
                self._fence_expected.pop(group, None)
                self._fence_delivered.pop(group, None)

    def _on_epoch_switch(self, record: TraceRecord) -> None:
        phase = record.data.get("phase")
        self.epoch = int(record.data["epoch"])
        if phase == "begin":
            self._switch_windows.append((record.time, None))
        elif phase == "end" and self._switch_windows:
            begin, end = self._switch_windows[-1]
            if end is None:
                self._switch_windows[-1] = (begin, record.time)

    # -- verdicts ----------------------------------------------------------

    def _alert(
        self,
        time: float,
        rule: str,
        message: str,
        anchor: str,
        severity: str = "error",
        cause: Optional[str] = None,
        evidence: Optional[Dict[str, int]] = None,
    ) -> None:
        if len(self.alerts) >= self.max_alerts:
            self.alerts_dropped += 1
            return
        self.alerts.append(
            MonitorAlert(
                time=time,
                rule=rule,
                severity=severity,
                message=message,
                anchor=anchor,
                cause=cause,
                evidence=evidence or {},
            )
        )

    @property
    def violations(self) -> int:
        """Number of error-severity alerts raised so far."""
        return sum(1 for alert in self.alerts if alert.severity == "error")

    def holdback_occupancy(self) -> Dict[int, int]:
        """Hosts with messages currently parked in hold-back buffers."""
        return dict(sorted(self._holdback_depth.items()))

    def fences_outstanding(self) -> Dict[int, List[int]]:
        """Members yet to deliver their group's live epoch fence."""
        outstanding: Dict[int, List[int]] = {}
        for group in sorted(self._fence_expected):
            missing = sorted(
                self._fence_expected[group]
                - self._fence_delivered.get(group, set())
            )
            if missing:
                outstanding[group] = missing
        return outstanding

    def run_view(self) -> RunView:
        """The audit view accumulated from the stream (``retain_audit``)."""
        if not self.retain_audit:
            raise RuntimeError(
                "monitor was constructed with retain_audit=False; "
                "no run view was accumulated"
            )
        return RunView(
            delivered={
                host: list(entries)
                for host, entries in self._view_delivered.items()
            },
            membership=dict(self.membership),
            published=dict(self._view_published),
            pending=dict(sorted(self._holdback_depth.items())),
            track_stability=False,
        )

    def final_findings(
        self,
        complete: bool = True,
        causal: bool = True,
        mutual: bool = True,
    ) -> List[Finding]:
        """Post-hoc predicates over the streamed view — same code path as
        :func:`repro.check.verify_run` on the fabric, so a campaign can
        assert the two verdicts are identical."""
        return verify_run(
            self.run_view(), complete=complete, causal=causal, mutual=mutual
        )
