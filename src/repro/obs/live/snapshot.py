"""Serializable telemetry snapshots, mergeable across nodes.

A :class:`TelemetrySnapshot` is the wire form of one node's live
telemetry: throughput totals, per-phase latency histograms (bucket
counts, not pre-computed quantiles — so merging stays exact), hold-back
occupancy, outstanding epoch fences, and the streaming-monitor alert
feed.  The service façade answers its ``metrics`` verb with one of
these; an operator view aggregating a fabric merges the per-node
snapshots with :meth:`TelemetrySnapshot.merge` and computes percentiles
*after* the merge, which the fixed-bucket scheme makes exact
(:meth:`repro.obs.registry.Histogram.merge_counts`).
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.obs.live.latency import PHASES, phase_summary
from repro.obs.registry import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.live.monitors import LiveMonitor

__all__ = ["TelemetrySnapshot", "SNAPSHOT_FORMAT", "merge_snapshots"]

#: Schema tag embedded in every serialized snapshot.
SNAPSHOT_FORMAT = "repro-telemetry/1"


def _histogram_to_dict(histogram: Histogram) -> Dict[str, Any]:
    return {
        "buckets": list(histogram.buckets),
        "counts": list(histogram.bucket_counts),
        "count": histogram.count,
        "sum": histogram.sum,
        "max": histogram.max,
    }


def _histogram_from_dict(name: str, data: Dict[str, Any]) -> Histogram:
    histogram = Histogram(name, (), tuple(data["buckets"]))
    counts = list(data["counts"])
    if len(counts) != len(histogram.bucket_counts):
        raise ValueError(
            f"histogram {name!r}: {len(counts)} bucket counts for "
            f"{len(histogram.buckets)} bounds"
        )
    histogram.bucket_counts = counts
    histogram.count = int(data["count"])
    histogram.sum = float(data["sum"])
    histogram.max = float(data["max"])
    return histogram


@dataclass
class TelemetrySnapshot:
    """One node's telemetry at a point in virtual time."""

    node: str
    now: float = 0.0
    published: int = 0
    delivered: int = 0
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    alerts_dropped: int = 0
    #: host id (as str, JSON-friendly) -> hold-back depth
    holdback: Dict[str, int] = field(default_factory=dict)
    #: group id (as str) -> members yet to deliver the live fence
    fences: Dict[str, List[int]] = field(default_factory=dict)
    epoch: Optional[int] = None
    #: phase -> serialized histogram (bucket counts merge exactly)
    phases: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def from_monitor(cls, monitor: "LiveMonitor") -> "TelemetrySnapshot":
        """Capture a monitor's current state (cheap; copies counters)."""
        return cls(
            node=monitor.node,
            now=monitor.now,
            published=monitor.published_total,
            delivered=monitor.delivered_total,
            alerts=[alert.to_dict() for alert in monitor.alerts],
            alerts_dropped=monitor.alerts_dropped,
            holdback={
                str(host): depth
                for host, depth in monitor.holdback_occupancy().items()
            },
            fences={
                str(group): missing
                for group, missing in monitor.fences_outstanding().items()
            },
            epoch=monitor.epoch,
            phases={
                phase: _histogram_to_dict(monitor.latency.histograms[phase])
                for phase in PHASES
            },
        )

    # -- verdict helpers ---------------------------------------------------

    @property
    def violations(self) -> int:
        return sum(1 for a in self.alerts if a.get("severity") == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for a in self.alerts if a.get("severity") == "warning")

    def phase_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{count, p50, p99, p999, max}`` from the counts."""
        out: Dict[str, Dict[str, float]] = {}
        for phase, data in self.phases.items():
            out[phase] = phase_summary(_histogram_from_dict(phase, data))
        return out

    # -- wire form ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SNAPSHOT_FORMAT,
            "node": self.node,
            "now": self.now,
            "published": self.published,
            "delivered": self.delivered,
            "violations": self.violations,
            "warnings": self.warnings,
            "alerts": list(self.alerts),
            "alerts_dropped": self.alerts_dropped,
            "holdback": dict(self.holdback),
            "fences": {g: list(m) for g, m in self.fences.items()},
            "epoch": self.epoch,
            "phases": {p: dict(d) for p, d in self.phases.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetrySnapshot":
        fmt = data.get("format", SNAPSHOT_FORMAT)
        if fmt != SNAPSHOT_FORMAT:
            raise ValueError(f"unknown telemetry snapshot format {fmt!r}")
        return cls(
            node=str(data.get("node", "unknown")),
            now=float(data.get("now", 0.0)),
            published=int(data.get("published", 0)),
            delivered=int(data.get("delivered", 0)),
            alerts=list(data.get("alerts", [])),
            alerts_dropped=int(data.get("alerts_dropped", 0)),
            holdback={
                str(k): int(v) for k, v in data.get("holdback", {}).items()
            },
            fences={
                str(k): [int(m) for m in v]
                for k, v in data.get("fences", {}).items()
            },
            epoch=data.get("epoch"),
            phases={
                str(p): dict(d) for p, d in data.get("phases", {}).items()
            },
        )

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Exact cross-node aggregate of two snapshots.

        Totals add, hold-back depths add per host, fence gaps union,
        histograms merge bucket-by-bucket (identical fixed schemes), and
        the alert feeds interleave by time.  Quantiles computed from the
        merged histogram equal those of a single histogram that observed
        the union of both nodes' samples.
        """
        merged = TelemetrySnapshot(
            node=f"{self.node}+{other.node}",
            now=max(self.now, other.now),
            published=self.published + other.published,
            delivered=self.delivered + other.delivered,
            alerts=sorted(
                list(self.alerts) + list(other.alerts),
                key=lambda a: (a.get("time", 0.0), a.get("rule", "")),
            ),
            alerts_dropped=self.alerts_dropped + other.alerts_dropped,
            holdback=dict(self.holdback),
            fences={g: list(m) for g, m in self.fences.items()},
            epoch=(
                other.epoch
                if self.epoch is None
                else self.epoch
                if other.epoch is None
                else max(self.epoch, other.epoch)
            ),
        )
        for host, depth in other.holdback.items():
            merged.holdback[host] = merged.holdback.get(host, 0) + depth
        for group, missing in other.fences.items():
            merged.fences[group] = sorted(
                set(merged.fences.get(group, [])) | set(missing)
            )
        for phase in sorted(set(self.phases) | set(other.phases)):
            ours, theirs = self.phases.get(phase), other.phases.get(phase)
            if ours is None or theirs is None:
                merged.phases[phase] = dict(ours or theirs or {})
                continue
            histogram = _histogram_from_dict(phase, ours)
            histogram.merge_counts(_histogram_from_dict(phase, theirs))
            merged.phases[phase] = _histogram_to_dict(histogram)
        return merged


def merge_snapshots(
    snapshots: List[TelemetrySnapshot],
) -> Optional[TelemetrySnapshot]:
    """Fold a list of per-node snapshots into one aggregate (None if empty)."""
    merged: Optional[TelemetrySnapshot] = None
    for snapshot in snapshots:
        merged = snapshot if merged is None else merged.merge(snapshot)
    return merged
