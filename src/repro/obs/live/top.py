"""``repro top`` — a refreshing terminal operator view of the telemetry plane.

Renders :class:`~repro.obs.live.snapshot.TelemetrySnapshot` frames:
throughput, per-phase latency percentiles (p50/p99/p999), hold-back
occupancy, outstanding epoch fences, and the streaming-monitor alert
feed.  Two drivers produce the frames:

* **live** — poll a running ``repro serve`` instance's ``metrics`` verb
  over its newline-JSON TCP protocol every ``--interval`` seconds.
* **replay** — stream a JSONL trace export (``repro trace run`` /
  :func:`repro.obs.exporters.write_trace_jsonl`) through a fresh
  :class:`~repro.obs.live.LiveMonitor`, emitting one frame per window of
  *virtual* time.  Group membership is reconstructed from the trace's
  ``publish``/``distribute`` records, so the order/duplicate monitors run
  on replay exactly as they do live.

Rendering is pure (:func:`render_frame` maps snapshot -> text), so tests
and ``--frames N --no-clear`` CI runs get byte-stable output; rates are
computed from *virtual-time* deltas between consecutive frames, never
from the wall clock.  Keys: ``q`` + Enter quits the live view (the
replay view ends with its trace); ``Ctrl-C`` always works.
"""

import json
import socket
import sys
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, TextIO

from repro.obs.live.latency import PHASES
from repro.obs.live.monitors import LiveMonitor
from repro.obs.live.snapshot import TelemetrySnapshot
from repro.runtime.trace import TraceRecord

__all__ = [
    "iter_live",
    "iter_replay",
    "membership_from_records",
    "render_frame",
    "run_top",
]

#: ANSI clear-screen + cursor-home, written between frames unless --no-clear.
CLEAR = "\x1b[2J\x1b[H"

#: Alerts shown in the feed section of one frame (newest last).
ALERT_TAIL = 8


def _fmt_ms(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def render_frame(
    snapshot: TelemetrySnapshot,
    previous: Optional[TelemetrySnapshot] = None,
) -> str:
    """Render one snapshot as the operator view (pure; no I/O)."""
    lines: List[str] = []
    epoch = "-" if snapshot.epoch is None else str(snapshot.epoch)
    lines.append(
        f"repro top — node {snapshot.node}   epoch {epoch}   "
        f"t={snapshot.now:.1f} ms (virtual)"
    )
    if previous is not None and snapshot.now > previous.now:
        delta = snapshot.delivered - previous.delivered
        rate = f"{delta * 1000.0 / (snapshot.now - previous.now):10.1f}"
    else:
        rate = " " * 9 + "-"
    lines.append(
        f"published {snapshot.published:>8}   delivered {snapshot.delivered:>8}"
        f"   rate {rate} msg/s   alerts {snapshot.violations} err"
        f" / {snapshot.warnings} warn"
        + (f" ({snapshot.alerts_dropped} dropped)" if snapshot.alerts_dropped else "")
    )
    lines.append("")
    lines.append(
        f"{'phase':<12}{'count':>8}{'p50':>9}{'p99':>9}{'p999':>9}{'max':>9}"
        "   (virtual ms)"
    )
    summaries = snapshot.phase_summaries()
    for phase in PHASES:
        summary = summaries.get(phase)
        if summary is None:
            continue
        lines.append(
            f"{phase:<12}{int(summary['count']):>8}"
            f"{_fmt_ms(summary['p50']):>9}"
            f"{_fmt_ms(summary['p99']):>9}"
            f"{_fmt_ms(summary['p999']):>9}"
            f"{_fmt_ms(summary['max']):>9}"
        )
    lines.append("")
    buffered = sum(snapshot.holdback.values())
    if buffered:
        worst = sorted(
            snapshot.holdback.items(), key=lambda kv: (-kv[1], int(kv[0]))
        )[:4]
        detail = ", ".join(f"host {h}:{d}" for h, d in worst)
        lines.append(
            f"hold-back: {buffered} buffered across "
            f"{len(snapshot.holdback)} hosts ({detail})"
        )
    else:
        lines.append("hold-back: empty")
    if snapshot.fences:
        for group, missing in sorted(
            snapshot.fences.items(), key=lambda kv: int(kv[0])
        ):
            lines.append(f"fences: group {group} waiting on {missing}")
    else:
        lines.append("fences: none outstanding")
    lines.append("")
    lines.append(f"recent alerts (last {ALERT_TAIL}):")
    tail = snapshot.alerts[-ALERT_TAIL:]
    if not tail:
        lines.append("  (none)")
    for alert in tail:
        cause = f"  cause={alert['cause']}" if alert.get("cause") else ""
        lines.append(
            f"  [{alert.get('time', 0.0):9.1f}] {alert.get('rule', '?')} "
            f"{alert.get('severity', '?'):<7} {alert.get('message', '')}{cause}"
        )
    return "\n".join(lines) + "\n"


# -- replay driver ----------------------------------------------------------


def read_trace_jsonl(path: str) -> List[TraceRecord]:
    """Load a JSONL trace export back into :class:`TraceRecord` objects."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            records.append(
                TraceRecord(
                    float(obj["time"]), str(obj["kind"]), dict(obj["data"])
                )
            )
    return records


def membership_from_records(
    records: Iterable[TraceRecord],
) -> Dict[int, frozenset]:
    """Reconstruct group membership from ``deliver``/``buffer`` records.

    Each carries the receiving ``host`` and its ``group``, so the union
    over the whole trace is exactly the set of hosts the monitors must
    see deliveries from (``distribute`` records only carry a member
    *count*).  A member that never delivered anything (e.g. crashed for
    the whole run) is invisible here, which shrinks the replay monitors'
    confirmation windows — safe, since eviction only ever happens after
    every *reconstructed* member delivered.
    """
    membership: Dict[int, set] = {}
    for record in records:
        if record.kind in ("deliver", "buffer"):
            group = record.data.get("group")
            host = record.data.get("host")
            if group is not None and host is not None:
                membership.setdefault(int(group), set()).add(int(host))
    return {group: frozenset(hosts) for group, hosts in membership.items()}


def iter_replay(
    path: str,
    window_ms: float = 100.0,
    node: str = "replay",
    stall_threshold_ms: Optional[float] = None,
) -> Iterator[TelemetrySnapshot]:
    """Stream a JSONL trace through a monitor, one frame per time window."""
    if window_ms <= 0:
        raise ValueError(f"window_ms must be positive, got {window_ms}")
    records = read_trace_jsonl(path)
    kwargs: Dict[str, Any] = {"node": node, "retain_audit": False}
    if stall_threshold_ms is not None:
        kwargs["stall_threshold_ms"] = stall_threshold_ms
    monitor = LiveMonitor(**kwargs)
    monitor.adopt_membership(membership_from_records(records))
    if not records:
        yield TelemetrySnapshot.from_monitor(monitor)
        return
    boundary = records[0].time + window_ms
    for record in records:
        while record.time >= boundary:
            yield TelemetrySnapshot.from_monitor(monitor)
            boundary += window_ms
        monitor.observe(record)
    yield TelemetrySnapshot.from_monitor(monitor)


# -- live driver ------------------------------------------------------------


def _rpc(host: str, port: int, req: Dict[str, Any]) -> Dict[str, Any]:
    """One blocking request/response round trip against ``repro serve``."""
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(json.dumps(req).encode() + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    body = b"".join(chunks)
    if not body:
        raise ConnectionError("service closed the connection")
    resp = json.loads(body)
    assert isinstance(resp, dict)
    return resp


def _wants_quit(interval: float) -> bool:
    """Sleep ``interval`` seconds; True if the user typed ``q`` + Enter."""
    if not sys.stdin.isatty():
        time.sleep(interval)
        return False
    import select

    ready, _, _ = select.select([sys.stdin], [], [], interval)
    if ready:
        line = sys.stdin.readline()
        return line.strip().lower() in ("q", "quit")
    return False


def iter_live(
    host: str,
    port: int,
    interval: float = 1.0,
    frames: Optional[int] = None,
) -> Iterator[TelemetrySnapshot]:
    """Poll a running service's ``metrics`` verb into snapshot frames."""
    emitted = 0
    while frames is None or emitted < frames:
        resp = _rpc(host, port, {"op": "metrics"})
        if not resp.get("ok"):
            raise RuntimeError(f"metrics request failed: {resp}")
        yield TelemetrySnapshot.from_dict(resp["snapshot"])
        emitted += 1
        if frames is not None and emitted >= frames:
            break
        if _wants_quit(interval):
            break


def run_top(
    snapshots: Iterable[TelemetrySnapshot],
    out: Optional[TextIO] = None,
    clear: bool = True,
) -> TelemetrySnapshot:
    """Render a frame stream; returns the final snapshot (for exit status)."""
    stream = sys.stdout if out is None else out
    previous: Optional[TelemetrySnapshot] = None
    last: Optional[TelemetrySnapshot] = None
    for snapshot in snapshots:
        if clear:
            stream.write(CLEAR)
        stream.write(render_frame(snapshot, previous))
        stream.flush()
        previous = last = snapshot
    if last is None:
        raise RuntimeError("no telemetry frames were produced")
    return last
