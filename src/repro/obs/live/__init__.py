"""Live telemetry plane: streaming monitors, latency SLOs, operator view.

Everything in this package consumes the runtime trace **as a stream**
(via :meth:`repro.runtime.trace.Trace.subscribe`) instead of post-hoc:

* :mod:`repro.obs.live.monitors` — :class:`LiveMonitor`, bounded-memory
  streaming checks of the RT300-class invariants (rules ``LM300-LM304``)
  with forensics cause attribution on stall alerts, plus an optional
  retained :class:`~repro.check.RunView` whose post-hoc verdicts are
  byte-identical to auditing the fabric directly.
* :mod:`repro.obs.live.latency` — :class:`PhaseLatencyTracker`, per-phase
  (delivery / sequencing / hold-back) fixed-bucket log-scale histograms
  with p50/p99/p999 summaries, exactly mergeable across nodes.
* :mod:`repro.obs.live.snapshot` — :class:`TelemetrySnapshot`, the
  serializable wire form served by the runtime service's ``metrics``
  verb and merged across nodes.
* :mod:`repro.obs.live.top` — the ``repro top`` refreshing terminal
  operator view, driven live over TCP or by replaying a JSONL trace.

This package is sim-scoped (simlint's purity rules apply): no wall-clock
reads, no global RNG — monitors are pure functions of the record stream,
which is what makes their alert feeds byte-identical across fixed-seed
runs.
"""

from repro.obs.live.latency import (
    PHASES,
    PhaseLatencyTracker,
    merge_phase_histograms,
    phase_summary,
)
from repro.obs.live.monitors import (
    MONITOR_RULES,
    STALL_THRESHOLD_MS,
    LiveMonitor,
    MonitorAlert,
)
from repro.obs.live.snapshot import (
    SNAPSHOT_FORMAT,
    TelemetrySnapshot,
    merge_snapshots,
)

__all__ = [
    "LiveMonitor",
    "MONITOR_RULES",
    "MonitorAlert",
    "PHASES",
    "PhaseLatencyTracker",
    "SNAPSHOT_FORMAT",
    "STALL_THRESHOLD_MS",
    "TelemetrySnapshot",
    "merge_phase_histograms",
    "merge_snapshots",
    "phase_summary",
]
