"""Streaming per-phase latency percentiles from trace records.

The paper's evaluation (and the mean-only summaries PR 1 shipped) hide
tail behaviour; FlexCast-style evaluation reports percentile
distributions instead.  :class:`PhaseLatencyTracker` feeds three
fixed-bucket log-scale histograms (:func:`repro.obs.registry.log_buckets`,
0.01 ms .. 10 s, 4 buckets per decade) straight from the trace stream:

* ``delivery`` — ingress→delivery: ``deliver.time - publish_time``, one
  observation per application delivery.
* ``sequencing`` — publish→distribution: time a message spent in the
  sequencing layer before fan-out, one observation per distributed
  message (the per-message publish time is evicted at the ``distribute``
  record, so the working set is only the in-flight window).
* ``holdback`` — hold-back wait: the ``waited`` field of each ``drain``
  record.  Deliveries that never buffered wait 0 ms and are *not*
  observed here — the histogram answers "when we buffered, for how
  long", which is the stall-facing question.

All values are **virtual milliseconds**, so the same percentiles come out
of a simulated run and a live asyncio run (scaled by the backend's
clock).  Fixed buckets make per-node histograms mergeable exactly
(:meth:`repro.obs.registry.Histogram.merge_counts`).
"""

from typing import Dict, Mapping, Optional

from repro.obs.registry import Histogram, MetricsRegistry
from repro.runtime.trace import TraceRecord

__all__ = ["PHASES", "PhaseLatencyTracker", "phase_summary"]

#: The tracked pipeline phases, in report order.
PHASES = ("delivery", "sequencing", "holdback")

#: Metric name shared by all three phase histograms (label ``phase``).
PHASE_METRIC = "repro_phase_latency_ms"

#: Quantiles surfaced in summaries: median plus the SLO tails.
SUMMARY_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


class PhaseLatencyTracker:
    """Feed per-phase latency histograms from a trace-record stream."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.histograms: Dict[str, Histogram] = {
            phase: self.registry.histogram(
                PHASE_METRIC,
                "Per-phase pipeline latency in virtual milliseconds",
                phase=phase,
            )
            for phase in PHASES
        }
        #: msg -> publish time, evicted at the distribute record
        self._publish_time: Dict[int, float] = {}

    def observe(self, record: TraceRecord) -> None:
        """Consume one trace record (publish/distribute/deliver/drain)."""
        kind = record.kind
        if kind == "deliver":
            self.histograms["delivery"].observe(
                record.time - float(record.data["publish_time"])
            )
        elif kind == "drain":
            waited = record.data.get("waited")
            if waited is not None:
                self.histograms["holdback"].observe(float(waited))
        elif kind == "publish":
            self._publish_time[int(record.data["msg"])] = record.time
        elif kind == "distribute":
            published_at = self._publish_time.pop(
                int(record.data["msg"]), None
            )
            if published_at is not None:
                self.histograms["sequencing"].observe(
                    record.time - published_at
                )

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{count, p50, p99, p999, max}`` (virtual ms)."""
        return {
            phase: phase_summary(self.histograms[phase]) for phase in PHASES
        }


def phase_summary(histogram: Histogram) -> Dict[str, float]:
    """Quantile summary of one histogram (count, p50/p99/p999, max)."""
    out: Dict[str, float] = {"count": float(histogram.count)}
    for label, q in SUMMARY_QUANTILES:
        out[label] = histogram.quantile(q)
    out["max"] = histogram.max
    return out


def merge_phase_histograms(
    target: Mapping[str, Histogram], source: Mapping[str, Histogram]
) -> None:
    """Fold ``source``'s per-phase histograms into ``target``'s."""
    for phase, histogram in source.items():
        if phase in target:
            target[phase].merge_counts(histogram)
