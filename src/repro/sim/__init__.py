"""Packet-level discrete-event simulation kernel.

This package provides the substrate on which the ordering protocol and its
baselines run.  It mirrors the simulation model of the paper's Section 4.1:
the network is modelled at packet level with per-link propagation delay;
queuing delay and (by default) packet loss are not modelled.  Loss can be
enabled explicitly to exercise the protocol's acknowledgment and
retransmission machinery.

The kernel is deliberately small and deterministic:

* :class:`~repro.sim.events.Simulator` — a heap-based event loop with stable
  tie-breaking, so two runs with the same seed produce identical schedules.
* :class:`~repro.sim.network.Channel` — a FIFO, constant-propagation-delay
  link between two processes, with optional Bernoulli loss.
* :class:`~repro.sim.processes.Process` — base class for simulated nodes.
* :class:`~repro.sim.trace.Trace` — structured event recording for metrics.
"""

from repro.sim.events import EventHandle, Simulator, SimulationError
from repro.sim.network import Channel, Network
from repro.sim.processes import Process
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Channel",
    "EventHandle",
    "Network",
    "Process",
    "SimulationError",
    "Simulator",
    "Trace",
    "TraceRecord",
]
