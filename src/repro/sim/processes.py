"""Deprecated alias: :class:`Process` moved to :mod:`repro.runtime.node`.

The process base class is transport-neutral since the runtime split — the
same ``Process`` runs on the simulated backend and the live asyncio
backend.  Import from :mod:`repro.runtime.node`; this module re-exports it
so historical ``from repro.sim.processes import Process`` imports keep
working.
"""

from repro.runtime.node import Process

__all__ = ["Process"]
