"""Base class for simulated protocol participants.

A :class:`Process` is anything that can be the endpoint of a
:class:`~repro.sim.network.Channel`: an end host, a sequencing node, a
centralized coordinator.  Subclasses implement :meth:`Process.receive`.
"""

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.events import Simulator
    from repro.sim.network import Channel


class Process:
    """A named participant in the simulation.

    Parameters
    ----------
    sim:
        The simulator driving this process.
    name:
        A unique, hashable identifier (host id, sequencing-node id, ...).
    """

    def __init__(self, sim: "Simulator", name: Any):
        self.sim = sim
        self.name = name
        self.messages_received = 0
        self.messages_sent = 0

    def receive(self, payload: Any, channel: "Channel") -> None:
        """Handle a payload arriving on ``channel``.

        Subclasses must override.  ``channel.src`` identifies the sender
        process.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
