"""Structured tracing of simulation events.

The metrics layer (:mod:`repro.metrics`) computes latency stretch, RDP, and
load figures from traces rather than by instrumenting protocol code, which
keeps the protocol implementation uncluttered and lets baselines share the
same analysis pipeline.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """A single traced occurrence.

    Attributes
    ----------
    time:
        Virtual time of the occurrence.
    kind:
        A short category string, e.g. ``"publish"``, ``"deliver"``,
        ``"sequence"``, ``"forward"``.
    data:
        Free-form payload; by convention a dict with at least ``msg`` for
        message-scoped records.
    """

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """An append-only log of :class:`TraceRecord` with simple querying."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._counts: Dict[str, int] = {}

    def record(self, time: float, kind: str, **data: Any) -> None:
        """Append one record (no-op when tracing is disabled)."""
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if self.enabled:
            self._records.append(TraceRecord(time, kind, data))

    def count(self, kind: str) -> int:
        """Number of records of ``kind`` (counted even when disabled)."""
        return self._counts.get(kind, 0)

    def select(self, kind: Optional[str] = None, **filters: Any) -> List[TraceRecord]:
        """Return records matching ``kind`` and all data-field filters."""
        return list(self.iter_select(kind, **filters))

    def iter_select(
        self, kind: Optional[str] = None, **filters: Any
    ) -> Iterator[TraceRecord]:
        """Lazily yield records matching ``kind`` and data-field filters."""
        for record in self._records:
            if kind is not None and record.kind != kind:
                continue
            if all(record.data.get(k) == v for k, v in filters.items()):
                yield record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def clear(self) -> None:
        """Drop all records and counters."""
        self._records.clear()
        self._counts.clear()
