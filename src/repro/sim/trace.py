"""Deprecated alias: tracing moved to :mod:`repro.runtime.trace`.

The trace is transport-neutral since the runtime split — the same
flight-recorder records a simulated run and a live asyncio run.  Import
:class:`Trace` / :class:`TraceRecord` from :mod:`repro.runtime.trace`;
this module re-exports them so historical ``from repro.sim.trace import
Trace`` imports keep working.
"""

from repro.runtime.trace import Trace, TraceRecord

__all__ = ["Trace", "TraceRecord"]
