"""Deterministic heap-based discrete-event loop.

The simulator executes callbacks at scheduled virtual times.  Two events
scheduled for the same time fire in the order they were scheduled (stable
tie-breaking by a monotonically increasing sequence number), which keeps
simulations reproducible across runs and platforms.

Observability: the loop maintains a live count of pending events (O(1),
updated on push/pop/cancel), a queue-depth high-water mark, and — when
``profile_every`` is set — wall-clock timing of every Nth callback via
``time.perf_counter``.  All are cheap enough to leave on; the profiler
costs two clock reads per *sampled* event only.
"""

import heapq
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

# SimulationError moved to the transport-neutral runtime layer; this
# re-export keeps the historical ``from repro.sim.events import
# SimulationError`` import path working (deprecated alias).
from repro.runtime.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids obs coupling
    from repro.obs.profiler import PhaseProfiler

__all__ = ["EventHandle", "SimulationError", "Simulator"]


class EventHandle:
    """A cancellable reference to a scheduled event.

    Handles are returned by :meth:`Simulator.schedule`.  Cancelling a handle
    marks the event dead; the simulator skips dead events when they surface
    at the top of the heap (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable,
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._live -= 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {name} {state}>"


class Simulator:
    """A discrete-event simulator with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, node.receive, message)
        sim.run()

    The clock unit is milliseconds by convention throughout this project
    (link delays produced by :mod:`repro.topology` are in milliseconds),
    but the kernel itself is unit-agnostic.

    Parameters
    ----------
    profile_every:
        When positive, every Nth executed event's callback is timed with
        ``perf_counter`` and accumulated into ``callback_wall_time`` /
        ``callbacks_sampled`` — a cheap sampling profiler for finding
        real-time hot spots without timing every event.
    """

    def __init__(self, profile_every: int = 0) -> None:
        self.now: float = 0.0
        self._heap: List[EventHandle] = []
        self._seq: int = 0
        self._running: bool = False
        self.events_executed: int = 0
        #: live (non-cancelled) events in the queue, maintained in O(1)
        self._live: int = 0
        #: peak heap depth, including not-yet-collected cancelled entries
        self.heap_high_water: int = 0
        self.profile_every = profile_every
        #: wall-clock seconds spent inside sampled callbacks
        self.callback_wall_time: float = 0.0
        self.callbacks_sampled: int = 0
        #: optional phase profiler (see :mod:`repro.obs.profiler`); when
        #: attached and enabled, every callback is timed and counted by
        #: kind.  All clock reads happen inside the profiler's sampling
        #: shim — this loop only calls its hooks.
        self.profiler: Optional["PhaseProfiler"] = None

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        handle = EventHandle(self.now + delay, self._seq, callback, args, self)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        self._live += 1
        if len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)
        return handle

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def peek_time(self) -> Optional[float]:
        """Return the virtual time of the next live event, or ``None``."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def _drop_cancelled(self) -> None:
        # Cancelled events were removed from the live count at cancel time;
        # this only reclaims their heap slots.
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Execute the next live event.  Return ``False`` if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._live -= 1
        event.sim = None  # executed: a late cancel() must not re-decrement
        if event.time < self.now:
            raise SimulationError(
                f"event queue corrupted: event at {event.time} < now {self.now}"
            )
        self.now = event.time
        self.events_executed += 1
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            # Phase attribution: the whole callback is "dispatch"; deeper
            # phases (sequencing/delivery/trace) subtract themselves.
            profiler.dispatch_begin(event.callback)
            event.callback(*event.args)
            profiler.dispatch_end(self.now)
        elif self.profile_every and self.events_executed % self.profile_every == 0:
            # Sampling profiler: wall time spent inside the callback is
            # recorded for diagnostics and never feeds virtual time.
            # simlint: disable=SL101 -- wall-time accounting only
            start = perf_counter()
            event.callback(*event.args)
            # simlint: disable=SL101 -- see above; wall-time accounting only.
            self.callback_wall_time += perf_counter() - start
            self.callbacks_sampled += 1
        else:
            event.callback(*event.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the number of events executed by this call.  Events scheduled
        exactly at ``until`` still execute; later ones remain queued.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        return executed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Maintained incrementally on schedule/execute/cancel — O(1), unlike
        the full heap scan this property once performed.
        """
        return self._live

    def __repr__(self) -> str:
        return f"<Simulator now={self.now:.6f} pending={self.pending}>"
