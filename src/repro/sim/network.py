"""Simulated point-to-point channels and the network that owns them.

Channels model the paper's inter-node communication assumptions:

* **FIFO** — Section 3.1 assumes a FIFO channel between any two sequencers.
  A channel has a constant propagation delay, and delivery times are forced
  to be non-decreasing, so FIFO holds even if the delay is later changed.
* **Propagation delay only** — Section 4.1: "The simulator models the
  propagation delay between routers, but not packet losses or queuing
  delays."  Loss is therefore off by default, but can be enabled
  (``loss_rate > 0``) to exercise the ack/retransmission machinery that
  Section 3.1 specifies.

Fault injection (see :mod:`repro.faults`) extends the model with *link
outages* (a window during which every send on a channel is dropped) and
*partitions* (a cut between two sets of processes; channels created while
the cut is active inherit the remaining outage window).  Drops are
attributed to their cause — random loss vs. outage — so chaos reports can
explain where packets went.
"""

import random
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sim.events import Simulator
from repro.sim.processes import Process


class Channel:
    """A unidirectional FIFO link between two processes.

    Parameters
    ----------
    sim:
        The simulator to schedule deliveries on.
    src, dst:
        Endpoint processes.
    delay:
        One-way propagation delay (milliseconds by project convention).
    loss_rate:
        Probability in ``[0, 1)`` that a given send is dropped.
    rng:
        Random source used for loss decisions; required if ``loss_rate > 0``.
    """

    def __init__(
        self,
        sim: Simulator,
        src: Process,
        dst: Process,
        delay: float,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if delay < 0:
            raise ValueError(f"channel delay must be non-negative, got {delay}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0 and rng is None:
            raise ValueError("loss_rate > 0 requires an rng")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.delay = delay
        self.loss_rate = loss_rate
        self._rng = rng
        self._last_delivery_time = 0.0
        self._down_until = 0.0
        self.sends = 0
        #: packets dropped by Bernoulli loss injection
        self.loss_drops = 0
        #: packets dropped because the link was in an outage window
        self.outage_drops = 0
        self.bytes_sent = 0
        self.receives = 0
        #: packets currently propagating (scheduled but not yet delivered)
        self.in_flight = 0
        self.in_flight_high_water = 0

    @property
    def drops(self) -> int:
        """Total packets dropped, whatever the cause."""
        return self.loss_drops + self.outage_drops

    def fail(self, duration: float) -> None:
        """Take the link down for ``duration`` time units.

        Packets sent while down are dropped (an outage behaves like 100%
        loss); an upper reliability layer — e.g. the ordering fabric's
        retransmission buffers — recovers them after the link heals.
        """
        if duration <= 0:
            raise ValueError(f"outage duration must be positive, got {duration}")
        self._down_until = max(self._down_until, self.sim.now + duration)

    @property
    def is_down(self) -> bool:
        """Whether the link is currently in an outage window."""
        return self.sim.now < self._down_until

    def send(self, payload: Any, size_bytes: int = 0) -> bool:
        """Transmit ``payload`` to the destination process.

        Returns ``True`` if the packet was put on the wire, ``False`` if it
        was dropped by loss injection or a link outage.  ``size_bytes``
        feeds the overhead accounting used by the stamp-size benchmarks.
        """
        self.sends += 1
        self.src.messages_sent += 1
        self.bytes_sent += size_bytes
        if self.is_down:
            self.outage_drops += 1
            return False
        if self.loss_rate > 0:
            assert self._rng is not None  # enforced by the constructor
            if self._rng.random() < self.loss_rate:
                self.loss_drops += 1
                return False
        # Enforce FIFO: never deliver before a previously sent packet.
        arrival = max(self.sim.now + self.delay, self._last_delivery_time)
        self._last_delivery_time = arrival
        self.sim.schedule_at(arrival, self._deliver, payload)
        self.in_flight += 1
        if self.in_flight > self.in_flight_high_water:
            self.in_flight_high_water = self.in_flight
        return True

    def _deliver(self, payload: Any) -> None:
        self.in_flight -= 1
        self.receives += 1
        self.dst.messages_received += 1
        self.dst.receive(payload, self)

    def __repr__(self) -> str:
        return (
            f"<Channel {self.src.name!r}->{self.dst.name!r} "
            f"delay={self.delay:.3f} sends={self.sends}>"
        )


class Network:
    """A registry of processes and the channels connecting them.

    The network creates channels on demand from a delay oracle — typically
    a :class:`~repro.topology.routing.RoutingTable` that returns shortest-
    path delays between the machines hosting the two processes.
    """

    #: channel counters carried over when channels are retired (failover)
    _CARRIED_STATS = (
        "sends",
        "loss_drops",
        "outage_drops",
        "bytes_sent",
        "receives",
    )

    def __init__(
        self,
        sim: Simulator,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.loss_rate = loss_rate
        self.rng = rng
        self._processes: Dict[Any, Process] = {}
        self._channels: Dict[Tuple[Any, Any], Channel] = {}
        #: active partition cuts: (heal time, side A, side B or None=rest)
        self._cuts: List[Tuple[float, FrozenSet[Any], Optional[FrozenSet[Any]]]] = []
        #: counters accumulated from channels retired by failover, so the
        #: network-wide totals stay monotonic across node relocations
        self._retired_totals: Dict[str, int] = {k: 0 for k in self._CARRIED_STATS}
        self.channels_retired = 0
        #: edges retired by failover and not since re-created; exported
        #: into certificates so GV206 can prove no retired edge is live
        self._retired_keys: Set[Tuple[Any, Any]] = set()

    def add_process(self, process: Process) -> Process:
        """Register a process; names must be unique."""
        if process.name in self._processes:
            raise ValueError(f"duplicate process name {process.name!r}")
        self._processes[process.name] = process
        return process

    def process(self, name: Any) -> Process:
        """Look up a registered process by name."""
        return self._processes[name]

    def __contains__(self, name: Any) -> bool:
        return name in self._processes

    def connect(self, src_name: Any, dst_name: Any, delay: float) -> Channel:
        """Create (or fetch) the unidirectional channel ``src -> dst``.

        A repeated connect with a different delay is an error: links in a
        run are immutable, matching the static-topology evaluation model.
        (Failover relocations first *retire* a process's channels, so the
        re-created channels may legitimately carry a new delay.)
        """
        key = (src_name, dst_name)
        existing = self._channels.get(key)
        if existing is not None:
            if existing.delay != delay:
                raise ValueError(
                    f"channel {key} already exists with delay "
                    f"{existing.delay}, refusing {delay}"
                )
            return existing
        channel = Channel(
            self.sim,
            self._processes[src_name],
            self._processes[dst_name],
            delay,
            loss_rate=self.loss_rate,
            rng=self.rng,
        )
        self._channels[key] = channel
        # A re-created edge (post-failover reconnect) is live again.
        self._retired_keys.discard(key)
        # A channel created while a partition cut is active inherits the
        # remaining outage window, so retransmissions cannot tunnel
        # through the cut on a freshly created channel.
        for heal_time, side_a, side_b in self._active_cuts():
            if _crosses_cut(src_name, dst_name, side_a, side_b):
                remaining = heal_time - self.sim.now
                if remaining > 0:
                    channel.fail(remaining)
        return channel

    def channel(self, src_name: Any, dst_name: Any) -> Channel:
        """Fetch an existing channel; raises ``KeyError`` if absent."""
        return self._channels[(src_name, dst_name)]

    @property
    def channels(self) -> Dict[Tuple[Any, Any], Channel]:
        """Read-only view of all channels (for metrics)."""
        return dict(self._channels)

    # -- fault injection ---------------------------------------------------

    def _active_cuts(
        self,
    ) -> List[Tuple[float, FrozenSet[Any], Optional[FrozenSet[Any]]]]:
        self._cuts = [cut for cut in self._cuts if cut[0] > self.sim.now]
        return self._cuts

    def partition(
        self,
        side: FrozenSet[Any],
        duration: float,
        side_b: Optional[FrozenSet[Any]] = None,
    ) -> int:
        """Cut ``side`` off from ``side_b`` (default: everything else).

        Every existing channel crossing the cut (in either direction) goes
        into an outage window for ``duration``; channels created while the
        cut is active inherit the remaining window (see :meth:`connect`).
        Returns the number of channels failed immediately.
        """
        if duration <= 0:
            raise ValueError(f"partition duration must be positive, got {duration}")
        side = frozenset(side)
        other = frozenset(side_b) if side_b is not None else None
        self._cuts.append((self.sim.now + duration, side, other))
        failed = 0
        for (src_name, dst_name), channel in self._channels.items():
            if _crosses_cut(src_name, dst_name, side, other):
                channel.fail(duration)
                failed += 1
        return failed

    def retire_channels(self, name: Any) -> int:
        """Remove every channel touching process ``name`` (failover).

        The channels' counters are folded into the network-wide retired
        totals so ``total_*`` aggregates remain monotonic.  In-flight
        packets already scheduled on a retired channel still deliver (they
        were on the wire); new traffic creates fresh channels — typically
        with a new delay, because the process moved machines.
        """
        retired = [
            key for key in self._channels if key[0] == name or key[1] == name
        ]
        for key in retired:
            channel = self._channels.pop(key)
            for stat in self._CARRIED_STATS:
                self._retired_totals[stat] += getattr(channel, stat)
        self.channels_retired += len(retired)
        self._retired_keys.update(retired)
        return len(retired)

    @property
    def retired_edges(self) -> Set[Tuple[Any, Any]]:
        """Edges retired by failover and not re-created since."""
        return set(self._retired_keys)

    # -- aggregates --------------------------------------------------------

    def total_bytes_sent(self) -> int:
        """Aggregate wire bytes across all channels (including retired)."""
        return (
            sum(c.bytes_sent for c in self._channels.values())
            + self._retired_totals["bytes_sent"]
        )

    def total_sends(self) -> int:
        """Aggregate packet transmissions across all channels."""
        return (
            sum(c.sends for c in self._channels.values())
            + self._retired_totals["sends"]
        )

    def total_drops(self) -> int:
        """Aggregate packets lost to loss injection or outages."""
        return self.total_loss_drops() + self.total_outage_drops()

    def total_loss_drops(self) -> int:
        """Aggregate packets lost to Bernoulli loss injection."""
        return (
            sum(c.loss_drops for c in self._channels.values())
            + self._retired_totals["loss_drops"]
        )

    def total_outage_drops(self) -> int:
        """Aggregate packets lost to link outages / partitions."""
        return (
            sum(c.outage_drops for c in self._channels.values())
            + self._retired_totals["outage_drops"]
        )

    def total_in_flight(self) -> int:
        """Packets currently propagating across all channels."""
        return sum(c.in_flight for c in self._channels.values())


def _crosses_cut(
    src_name: Any,
    dst_name: Any,
    side: FrozenSet[Any],
    side_b: Optional[FrozenSet[Any]],
) -> bool:
    """Whether the directed channel ``src -> dst`` crosses the cut."""
    if side_b is None:
        return (src_name in side) != (dst_name in side)
    return (src_name in side and dst_name in side_b) or (
        src_name in side_b and dst_name in side
    )
