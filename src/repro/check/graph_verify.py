"""Independent verifier for the sequencing-graph invariants.

:meth:`SequencingGraph.validate` is the runtime guard; this module is the
*auditor*: it consumes an exported JSON **certificate** (or a live graph,
by exporting one) and re-proves the protocol's structural invariants from
first principles, sharing no code path with the construction:

* **GV201 (C1)** — each group's active atoms lie on a single simple path
  of the undirected sequencing graph.  Proven by building the adjacency
  from the certificate's chain edges, checking the atoms fall in one
  connected component, and pruning that component's tree down to the
  minimal subtree spanning them: C1 holds iff that subtree has maximum
  degree ≤ 2 (i.e. is a path).
* **GV202 (C2)** — the undirected sequencing graph is loop-free.  Chains
  are vertex lists, so the graph has a cycle or a branching junction
  exactly when some atom occupies more than one chain position; the
  verifier counts occurrences rather than trusting chain disjointness.
* **GV203** — ingress uniqueness: every group has exactly one ingress
  point — either active overlap atoms (its path head acts as ingress) or
  one ingress-only atom, never both, never neither, and ingress-only
  atoms never appear on chains.
* **GV204** — atom/membership consistency: active overlap atoms name
  known groups and their groups still share at least ``threshold``
  members.
* **GV205** — placement co-location consistency (when the certificate
  carries a placement): every chain atom is placed exactly once, every
  node has a machine, and the ingress-only node flag matches its atoms.
* **GV206** — retired-channel consistency (when the certificate carries
  a ``channels`` section, as fabric-level exports do): no directed edge
  retired by a failover also appears live, and the retirement counter
  covers every recorded retired edge.  A retired edge resurfacing as
  live means traffic can still route through a relocated node's old
  identity.

Findings use the shared :class:`~repro.check.findings.Finding` type,
anchored by atom/group identifiers rather than file/line.

Certificate format (``docs/STATIC_ANALYSIS.md`` documents it for
external tooling)::

    {
      "format": "repro-sequencing-graph-certificate",
      "version": 1,
      "threshold": 2,
      "groups": {"0": [member ids], ...},
      "atoms": [{"kind": "overlap"|"ingress", "groups": [..],
                 "overlap_members": [..], "retired": false}, ...],
      "chains": [[["overlap", [0, 1]], ...], ...],
      "ingress_only": {"3": ["ingress", [3]], ...},
      "placement": {"nodes": [{"node_id": 0, "machine": 5,
                               "ingress_only": false,
                               "atom_ids": [["overlap", [0, 1]], ...]}]},
      "channels": {"retired_count": 2,
                   "live": [["('host', 0)", "('seq', 1)"], ...],
                   "retired": [["('seq', 0)", "('host', 2)"], ...]}
    }

``placement`` and ``channels`` are optional; fabric-level exports
(:meth:`repro.core.protocol.OrderingFabric.export_certificate`) include
``channels``, graph-only exports do not.  Atom references are ``[kind, [groups...]]``
pairs; they intentionally mirror :class:`~repro.core.messages.AtomId`
without importing it, so a certificate can be checked by third-party
tooling with nothing but a JSON parser.
"""

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.check.findings import Finding

TOOL = "graph-verify"

CERTIFICATE_FORMAT = "repro-sequencing-graph-certificate"
CERTIFICATE_VERSION = 1

#: internal atom key: ("overlap"|"ingress", (groups...))
AtomKey = Tuple[str, Tuple[int, ...]]


def _finding(code: str, anchor: str, message: str) -> Finding:
    return Finding(code=code, message=message, anchor=anchor, tool=TOOL)


def _edge_key(edge: Any) -> Tuple[str, str]:
    """Parse one ``[src, dst]`` certificate channel edge."""
    if (
        not isinstance(edge, (list, tuple))
        or len(edge) != 2
        or not all(isinstance(end, str) for end in edge)
    ):
        raise ValueError(f"malformed channel edge {edge!r}")
    return (edge[0], edge[1])


def _atom_key(ref: Any) -> AtomKey:
    """Parse one ``[kind, [groups]]`` certificate atom reference."""
    if (
        not isinstance(ref, (list, tuple))
        or len(ref) != 2
        or not isinstance(ref[0], str)
        or not isinstance(ref[1], (list, tuple))
        or not all(isinstance(g, int) for g in ref[1])
    ):
        raise ValueError(f"malformed atom reference {ref!r}")
    return (ref[0], tuple(ref[1]))


def _render_atom(key: AtomKey) -> str:
    kind, groups = key
    if kind == "ingress":
        return f"I({groups[0]})" if groups else "I(?)"
    return f"Q({','.join(str(g) for g in groups)})"


def load_certificate(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a certificate file; raises ``ValueError`` on the wrong format."""
    with open(path, "r", encoding="utf-8") as handle:
        cert = json.load(handle)
    if not isinstance(cert, dict) or cert.get("format") != CERTIFICATE_FORMAT:
        raise ValueError(
            f"{path} is not a {CERTIFICATE_FORMAT} document"
        )
    return cert


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------


class _CertView:
    """Parsed, index-friendly view of a certificate's contents."""

    def __init__(self, cert: Dict[str, Any]):
        self.threshold = int(cert.get("threshold", 2))
        self.groups: Dict[int, Set[int]] = {
            int(g): set(members) for g, members in cert.get("groups", {}).items()
        }
        self.atoms: Dict[AtomKey, Dict[str, Any]] = {}
        for spec in cert.get("atoms", []):
            key = _atom_key([spec["kind"], spec["groups"]])
            if key in self.atoms:
                raise ValueError(f"atom {_render_atom(key)} declared twice")
            self.atoms[key] = spec
        self.chains: List[List[AtomKey]] = [
            [_atom_key(ref) for ref in chain] for chain in cert.get("chains", [])
        ]
        self.ingress_only: Dict[int, AtomKey] = {
            int(g): _atom_key(ref)
            for g, ref in cert.get("ingress_only", {}).items()
        }
        self.placement: Optional[List[Dict[str, Any]]] = None
        if cert.get("placement") is not None:
            self.placement = list(cert["placement"].get("nodes", []))
        self.channels: Optional[Dict[str, Any]] = None
        if cert.get("channels") is not None:
            section = cert["channels"]
            self.channels = {
                "retired_count": int(section.get("retired_count", 0)),
                "live": [_edge_key(edge) for edge in section.get("live", [])],
                "retired": [
                    _edge_key(edge) for edge in section.get("retired", [])
                ],
            }

    def retired(self, key: AtomKey) -> bool:
        spec = self.atoms.get(key)
        return bool(spec and spec.get("retired", False))

    def active_atoms_of_group(self, group: int) -> List[AtomKey]:
        return [
            key
            for key in self.atoms
            if key[0] == "overlap" and group in key[1] and not self.retired(key)
        ]


def verify_certificate(cert: Dict[str, Any]) -> List[Finding]:
    """Re-prove C1/C2, ingress uniqueness, membership and placement
    consistency for one certificate.  Returns all findings (empty = pass)."""
    try:
        view = _CertView(cert)
    except (KeyError, TypeError, ValueError) as exc:
        return [_finding("GV200", "<certificate>", f"malformed certificate: {exc}")]

    findings: List[Finding] = []
    findings.extend(_check_c2_loop_free(view))
    # C1 needs a well-formed path forest; a C2 violation already explains
    # any path anomaly, so skip C1 for the affected groups only.
    c2_bad_atoms = {f.anchor for f in findings}
    findings.extend(_check_c1_single_path(view, c2_bad_atoms))
    findings.extend(_check_ingress_uniqueness(view))
    findings.extend(_check_membership_consistency(view))
    if view.placement is not None:
        findings.extend(_check_placement_consistency(view))
    if view.channels is not None:
        findings.extend(_check_channel_consistency(view))
    return findings


def _check_c2_loop_free(view: _CertView) -> List[Finding]:
    """GV202: no atom occupies two chain positions.

    Chains serialize the undirected sequencing graph as vertex paths, so
    every loop or branching junction manifests as a repeated vertex; a
    repetition count is therefore a complete loop-freedom proof for this
    representation.
    """
    findings: List[Finding] = []
    occurrences: Dict[AtomKey, int] = {}
    for chain in view.chains:
        for key in chain:
            occurrences[key] = occurrences.get(key, 0) + 1
    for key in sorted(occurrences):
        count = occurrences[key]
        if count > 1:
            findings.append(
                _finding(
                    "GV202", _render_atom(key),
                    f"C2 violated: atom occupies {count} chain positions — "
                    "the undirected sequencing graph contains a loop or "
                    "branching junction",
                )
            )
        if key not in view.atoms:
            findings.append(
                _finding(
                    "GV200", _render_atom(key),
                    "chain references an undeclared atom",
                )
            )
    return findings


def _check_c1_single_path(
    view: _CertView, skip_anchors: Set[Optional[str]]
) -> List[Finding]:
    """GV201: each group's active atoms span a single simple path."""
    # Undirected adjacency from consecutive chain pairs (first occurrence
    # wins for duplicated atoms — those already carry a GV202 finding).
    adjacency: Dict[AtomKey, Set[AtomKey]] = {}
    component: Dict[AtomKey, int] = {}
    for index, chain in enumerate(view.chains):
        for key in chain:
            adjacency.setdefault(key, set())
            component.setdefault(key, index)
        for a, b in zip(chain, chain[1:]):
            adjacency[a].add(b)
            adjacency[b].add(a)

    findings: List[Finding] = []
    for group in sorted(view.groups):
        atoms = view.active_atoms_of_group(group)
        if len(atoms) <= 1:
            continue
        if any(_render_atom(key) in skip_anchors for key in atoms):
            continue
        missing = [key for key in atoms if key not in component]
        if missing:
            findings.append(
                _finding(
                    "GV201", f"group {group}",
                    f"C1 violated: atom {_render_atom(missing[0])} of the "
                    "group is on no chain",
                )
            )
            continue
        components = {component[key] for key in atoms}
        if len(components) > 1:
            findings.append(
                _finding(
                    "GV201", f"group {group}",
                    f"C1 violated: the group's {len(atoms)} atoms fall on "
                    f"{len(components)} disconnected chains — no single "
                    "path connects its sequencers",
                )
            )
            continue
        # Same component: prune the component's tree to the minimal
        # subtree spanning the group's atoms and demand max degree <= 2.
        comp_index = components.pop()
        nodes = {key for key, c in component.items() if c == comp_index}
        keep = set(atoms)
        degree = {key: len(adjacency[key] & nodes) for key in nodes}
        leaves = [k for k in nodes if degree[k] <= 1 and k not in keep]
        live = set(nodes)
        while leaves:
            leaf = leaves.pop()
            if leaf not in live:
                continue
            live.discard(leaf)
            for neighbor in adjacency[leaf]:
                if neighbor in live:
                    degree[neighbor] -= 1
                    if degree[neighbor] <= 1 and neighbor not in keep:
                        leaves.append(neighbor)
        max_degree = max(
            (len(adjacency[key] & live) for key in live), default=0
        )
        if max_degree > 2:
            findings.append(
                _finding(
                    "GV201", f"group {group}",
                    "C1 violated: the minimal subtree spanning the group's "
                    f"atoms branches (degree {max_degree}) — the sequencers "
                    "do not lie on a single path",
                )
            )
    return findings


def _check_ingress_uniqueness(view: _CertView) -> List[Finding]:
    """GV203: exactly one ingress point per group."""
    findings: List[Finding] = []
    chain_atoms = {key for chain in view.chains for key in chain}
    for group in sorted(view.groups):
        active = view.active_atoms_of_group(group)
        ingress = view.ingress_only.get(group)
        if active and ingress is not None:
            findings.append(
                _finding(
                    "GV203", f"group {group}",
                    "duplicated ingress: the group has "
                    f"{len(active)} active overlap atoms and also "
                    f"ingress-only atom {_render_atom(ingress)} — two "
                    "independent group-local sequence spaces",
                )
            )
        elif not active and ingress is None:
            findings.append(
                _finding(
                    "GV203", f"group {group}",
                    "no ingress: the group has neither active overlap "
                    "atoms nor an ingress-only atom, so its messages can "
                    "never be group-sequenced",
                )
            )
        if ingress is not None and ingress in chain_atoms:
            findings.append(
                _finding(
                    "GV203", _render_atom(ingress),
                    "ingress-only atom appears on a sequencing chain",
                )
            )
        if ingress is not None and (
            ingress[0] != "ingress" or ingress[1] != (group,)
        ):
            findings.append(
                _finding(
                    "GV203", f"group {group}",
                    f"ingress-only entry names atom {_render_atom(ingress)} "
                    "which does not ingress this group",
                )
            )
    return findings


def _check_membership_consistency(view: _CertView) -> List[Finding]:
    """GV204: active overlap atoms are justified by current memberships."""
    findings: List[Finding] = []
    for key in sorted(view.atoms):
        kind, groups = key
        if kind != "overlap" or view.retired(key):
            continue
        unknown = [g for g in groups if g not in view.groups]
        if unknown:
            findings.append(
                _finding(
                    "GV204", _render_atom(key),
                    f"active atom references unknown group {unknown[0]}",
                )
            )
            continue
        if len(groups) != 2:
            findings.append(
                _finding(
                    "GV204", _render_atom(key),
                    f"overlap atom names {len(groups)} groups (expected 2)",
                )
            )
            continue
        g, h = groups
        shared = view.groups[g] & view.groups[h]
        if len(shared) < view.threshold:
            findings.append(
                _finding(
                    "GV204", _render_atom(key),
                    f"active atom's groups share only {len(shared)} "
                    f"member(s); threshold is {view.threshold}",
                )
            )
    return findings


def _check_placement_consistency(view: _CertView) -> List[Finding]:
    """GV205: the placement co-locates every atom exactly once."""
    findings: List[Finding] = []
    placed: Dict[AtomKey, int] = {}
    assert view.placement is not None
    for node in view.placement:
        node_id = node.get("node_id")
        atoms = [_atom_key(ref) for ref in node.get("atom_ids", [])]
        for key in atoms:
            if key in placed:
                findings.append(
                    _finding(
                        "GV205", _render_atom(key),
                        f"atom co-located twice (nodes {placed[key]} "
                        f"and {node_id})",
                    )
                )
            else:
                placed[key] = node_id
        if node.get("machine") is None:
            findings.append(
                _finding(
                    "GV205", f"node {node_id}",
                    "sequencing node has no machine assigned",
                )
            )
        all_ingress = bool(atoms) and all(k[0] == "ingress" for k in atoms)
        if bool(node.get("ingress_only", False)) != all_ingress:
            findings.append(
                _finding(
                    "GV205", f"node {node_id}",
                    "ingress_only flag disagrees with the node's atoms",
                )
            )
    for chain in view.chains:
        for key in chain:
            if key not in placed:
                findings.append(
                    _finding(
                        "GV205", _render_atom(key),
                        "chain atom is missing from the placement",
                    )
                )
    return findings


def _check_channel_consistency(view: _CertView) -> List[Finding]:
    """GV206: retired channels never resurface as live edges."""
    findings: List[Finding] = []
    assert view.channels is not None
    live = set(view.channels["live"])
    retired = view.channels["retired"]
    for src, dst in sorted(set(retired)):
        if (src, dst) in live:
            findings.append(
                _finding(
                    "GV206", f"{src} -> {dst}",
                    "retired channel still appears as a live edge — "
                    "failover left the relocated node's old identity "
                    "routable",
                )
            )
    duplicates = len(retired) - len(set(retired))
    if duplicates:
        findings.append(
            _finding(
                "GV206", "<channels>",
                f"{duplicates} retired edge(s) recorded more than once",
            )
        )
    if view.channels["retired_count"] < len(set(retired)):
        findings.append(
            _finding(
                "GV206", "<channels>",
                f"retirement counter {view.channels['retired_count']} is "
                f"lower than the {len(set(retired))} recorded retired "
                "edge(s) — the export and the transport disagree",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Live-graph entry point
# ---------------------------------------------------------------------------


def verify_graph(graph: Any, placement: Any = None) -> List[Finding]:
    """Verify a live :class:`~repro.core.sequencing_graph.SequencingGraph`.

    Goes through the certificate export, so the live path exercises
    exactly the representation external tooling sees.
    """
    return verify_certificate(graph.export_certificate(placement=placement))
