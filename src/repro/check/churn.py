"""Cross-epoch churn invariants (RT320–RT325).

The per-epoch runtime verifier (:mod:`repro.check.invariants`) audits one
fabric's delivery logs; under sustained churn the interesting properties
live *across* the epoch boundary: do surviving sequence spaces really
continue, does the epoch fence lose or duplicate anything, does a joined
subscriber see a clean prefix, and are a leaver's buffers accounted for?

:func:`collect_epoch_log` snapshots one epoch's observable state at its
cutover (or at the end of the run); :func:`verify_churn` re-derives the
invariants from a sequence of those logs, independently of the
reconfiguration code that claims to maintain them:

=======  ==============================================================
RT320    Surviving group spaces continue: the next epoch starts at the
         carried counter, and members deliver a gap-free run ending
         exactly at the fence (nothing lost or duplicated across it).
RT321    Surviving atom sequence spaces continue across the switch.
RT322    Exactly-once per host *across* epochs (no replay after cutover).
RT323    Every expected member consumed its group's epoch fence, and no
         hold-back buffer held messages at the cutover.
RT324    Members of changed/added groups — including joiners — see a
         clean prefix: group-local numbers restart at 1, gap-free.
RT325    A leaver consumed the old epoch's fence and left nothing
         buffered (its hold-back drained before it was dropped).
=======  ==============================================================

The checks mirror the RT30x conventions: one :class:`Finding` per
violation (capped per rule), ``tool="runtime-verify"``.
"""

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional

from repro.check.findings import Finding
from repro.core.messages import AtomId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import DeliveryRecord, OrderingFabric

__all__ = [
    "EpochLog",
    "collect_epoch_log",
    "verify_churn",
]

TOOL = "runtime-verify"

#: Findings reported per rule before truncation (matches RT30x).
MAX_FINDINGS_PER_CHECK = 25


def _finding(code: str, message: str, anchor: str) -> Finding:
    return Finding(code=code, message=message, anchor=anchor, tool=TOOL)


@dataclass
class EpochLog:
    """The observable outcome of one epoch, snapshotted at its cutover."""

    epoch: int
    #: the epoch's frozen member sets (the sequencing graph's view)
    members: Dict[int, FrozenSet[int]]
    #: group-local counter values carried *into* this epoch (0 = fresh)
    start_group_counters: Dict[int, int]
    #: group-local counter values at the cutover (fences included)
    end_group_counters: Dict[int, int]
    #: atom sequence counters carried *into* this epoch
    start_atom_counters: Dict[AtomId, int]
    #: atom sequence counters at the cutover
    end_atom_counters: Dict[AtomId, int]
    #: per-host delivery log of this epoch's fabric
    deliveries: Dict[int, List["DeliveryRecord"]] = field(default_factory=dict)
    #: application messages published in this epoch
    published_ids: List[int] = field(default_factory=list)
    #: whether this epoch ended with an online (fenced) switch
    online_switch: bool = False
    #: group -> members expected to consume the epoch fence
    fence_expected: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: group -> members that actually consumed it
    fence_delivered: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: group -> group-local number the fence consumed (None if unfenced)
    fence_group_seq: Dict[int, Optional[int]] = field(default_factory=dict)
    #: hosts with messages still buffered at the cutover (should be {})
    pending_at_cutover: Dict[int, int] = field(default_factory=dict)


def collect_epoch_log(
    fabric: "OrderingFabric",
    start_group_counters: Dict[int, int],
    start_atom_counters: Dict[AtomId, int],
    online_switch: bool,
) -> EpochLog:
    """Snapshot ``fabric``'s epoch outcome for :func:`verify_churn`.

    ``start_*`` are the counter values observed right after the fabric
    was built (i.e. what the previous epoch carried in); pass ``{}`` for
    the first epoch.
    """
    from repro.core.reconfigure import atom_counters, group_local_counters

    return EpochLog(
        epoch=fabric.epoch,
        members={g: fabric.graph.members(g) for g in fabric.graph.groups()},
        start_group_counters=dict(start_group_counters),
        end_group_counters=group_local_counters(fabric),
        start_atom_counters=dict(start_atom_counters),
        end_atom_counters=atom_counters(fabric),
        deliveries={
            host_id: list(process.delivered)
            for host_id, process in fabric.host_processes.items()
        },
        published_ids=sorted(fabric.published),
        online_switch=online_switch,
        fence_expected=dict(fabric.fence_expected),
        fence_delivered={
            group: frozenset(hosts)
            for group, hosts in fabric.fence_delivered.items()
        },
        fence_group_seq={
            fence.group: fence.group_seq for fence in fabric.fences.values()
        },
        pending_at_cutover=fabric.pending_messages(),
    )


def _group_seqs(log: EpochLog, host: int, group: int) -> List[int]:
    return [
        r.stamp.group_seq
        for r in log.deliveries.get(host, [])
        if r.stamp.group == group
    ]


def _expected_run(log: EpochLog, group: int, start: int) -> Optional[List[int]]:
    """The gap-free group-local run every member must deliver.

    Every number the epoch assigned, ``start+1`` through the end
    counter, minus the fence's own number when the epoch was fenced.
    (The fence is *not* necessarily the space's last number: a message
    still en route to the ingress when the switch began is sequenced
    after it, and the drain delivers it before the cutover.)  ``None``
    when the epoch assigned no numbers.
    """
    end = log.end_group_counters.get(group, start)
    run = range(start + 1, end + 1)
    if log.online_switch and log.fence_group_seq.get(group) is not None:
        fence_seq = log.fence_group_seq[group]
        return [seq for seq in run if seq != fence_seq]
    return list(run)


def _surviving(prev: EpochLog, cur: EpochLog) -> List[int]:
    return sorted(
        g
        for g in cur.members
        if g in prev.members and prev.members[g] == cur.members[g]
    )


def check_group_continuity(logs: List[EpochLog]) -> List[Finding]:
    """RT320: surviving group spaces continue gap-free across the fence."""
    findings: List[Finding] = []
    for prev, cur in zip(logs, logs[1:]):
        for group in _surviving(prev, cur):
            carried = prev.end_group_counters.get(group, 0)
            start = cur.start_group_counters.get(group, 0)
            if start != carried:
                findings.append(
                    _finding(
                        "RT320",
                        f"group {group} entered epoch {cur.epoch} at counter "
                        f"{start}, but epoch {prev.epoch} ended at {carried}",
                        f"group {group}",
                    )
                )
    for log in logs:
        for group in sorted(log.members):
            start = log.start_group_counters.get(group, 0)
            expected = _expected_run(log, group, start)
            if expected is None:
                continue
            for host in sorted(log.members[group]):
                got = _group_seqs(log, host, group)
                if got != expected:
                    findings.append(
                        _finding(
                            "RT320",
                            f"host {host} delivered group {group} seqs "
                            f"{got[:8]}{'...' if len(got) > 8 else ''} in "
                            f"epoch {log.epoch}, expected the gap-free run "
                            f"{expected[0] if expected else '-'}..."
                            f"{expected[-1] if expected else '-'} "
                            f"({len(expected)} messages)",
                            f"group {group}",
                        )
                    )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
    return findings


def check_atom_continuity(logs: List[EpochLog]) -> List[Finding]:
    """RT321: surviving atom sequence spaces continue across the switch."""
    findings: List[Finding] = []
    for prev, cur in zip(logs, logs[1:]):
        common = sorted(
            set(prev.end_atom_counters) & set(cur.start_atom_counters)
        )
        for atom_id in common:
            carried = prev.end_atom_counters[atom_id]
            start = cur.start_atom_counters[atom_id]
            if start != carried:
                findings.append(
                    _finding(
                        "RT321",
                        f"atom {atom_id!r} entered epoch {cur.epoch} at "
                        f"counter {start}, but epoch {prev.epoch} ended at "
                        f"{carried}",
                        repr(atom_id),
                    )
                )
            if len(findings) >= MAX_FINDINGS_PER_CHECK:
                return findings
    return findings


def check_exactly_once_across_epochs(logs: List[EpochLog]) -> List[Finding]:
    """RT322: no host delivers the same message id in two epochs."""
    findings: List[Finding] = []
    seen: Dict[int, Dict[int, int]] = {}  # host -> msg_id -> epoch
    for log in logs:
        for host in sorted(log.deliveries):
            host_seen = seen.setdefault(host, {})
            for record in log.deliveries[host]:
                earlier = host_seen.get(record.msg_id)
                if earlier is not None:
                    findings.append(
                        _finding(
                            "RT322",
                            f"host {host} delivered message {record.msg_id} "
                            f"in epoch {earlier} and again in epoch "
                            f"{log.epoch}",
                            f"host {host}",
                        )
                    )
                    if len(findings) >= MAX_FINDINGS_PER_CHECK:
                        return findings
                else:
                    host_seen[record.msg_id] = log.epoch
    return findings


def check_fence_completeness(logs: List[EpochLog]) -> List[Finding]:
    """RT323: every expected member consumed its fence; buffers drained."""
    findings: List[Finding] = []
    for log in logs:
        if log.online_switch:
            for group in sorted(log.fence_expected):
                missing = sorted(
                    log.fence_expected[group]
                    - log.fence_delivered.get(group, frozenset())
                )
                if missing:
                    findings.append(
                        _finding(
                            "RT323",
                            f"hosts {missing} never consumed group {group}'s "
                            f"fence in epoch {log.epoch}",
                            f"group {group}",
                        )
                    )
        if log.pending_at_cutover:
            findings.append(
                _finding(
                    "RT323",
                    f"hosts {sorted(log.pending_at_cutover)} still buffered "
                    f"messages at epoch {log.epoch}'s cutover",
                    f"epoch {log.epoch}",
                )
            )
        if len(findings) >= MAX_FINDINGS_PER_CHECK:
            return findings
    return findings


def check_join_clean_prefix(logs: List[EpochLog]) -> List[Finding]:
    """RT324: changed/added groups restart at 1 for every member."""
    findings: List[Finding] = []
    for prev, cur in zip(logs, logs[1:]):
        surviving = set(_surviving(prev, cur))
        for group in sorted(set(cur.members) - surviving):
            start = cur.start_group_counters.get(group, 0)
            if start != 0:
                findings.append(
                    _finding(
                        "RT324",
                        f"changed/added group {group} entered epoch "
                        f"{cur.epoch} at counter {start}, expected a fresh "
                        "space (0)",
                        f"group {group}",
                    )
                )
                continue
            expected = _expected_run(cur, group, 0)
            if not expected:
                continue
            joiners = sorted(
                cur.members[group] - prev.members.get(group, frozenset())
            )
            for host in sorted(cur.members[group]):
                got = _group_seqs(cur, host, group)
                if got != expected:
                    who = "joiner" if host in joiners else "member"
                    findings.append(
                        _finding(
                            "RT324",
                            f"{who} host {host} of group {group} saw seqs "
                            f"{got[:8]}{'...' if len(got) > 8 else ''} in "
                            f"epoch {cur.epoch}, expected the clean prefix "
                            f"1...{expected[-1]}",
                            f"group {group}",
                        )
                    )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
    return findings


def check_leaver_drained(logs: List[EpochLog]) -> List[Finding]:
    """RT325: a leaver consumed the fence and left nothing buffered."""
    findings: List[Finding] = []
    for prev, cur in zip(logs, logs[1:]):
        for group in sorted(prev.members):
            leavers = sorted(
                prev.members[group] - cur.members.get(group, frozenset())
            )
            for host in leavers:
                if (
                    prev.online_switch
                    and host
                    not in prev.fence_delivered.get(group, frozenset())
                ):
                    findings.append(
                        _finding(
                            "RT325",
                            f"host {host} left group {group} after epoch "
                            f"{prev.epoch} without consuming its fence — "
                            "its hold-back state is unaccounted for",
                            f"host {host}",
                        )
                    )
                if host in prev.pending_at_cutover:
                    findings.append(
                        _finding(
                            "RT325",
                            f"host {host} left after epoch {prev.epoch} with "
                            f"{prev.pending_at_cutover[host]} message(s) "
                            "still buffered",
                            f"host {host}",
                        )
                    )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
    return findings


def verify_churn(logs: List[EpochLog]) -> List[Finding]:
    """Run every RT32x cross-epoch check over a campaign's epoch logs."""
    sequence = sorted(logs, key=lambda log: log.epoch)
    findings: List[Finding] = []
    findings.extend(check_group_continuity(sequence))
    findings.extend(check_atom_continuity(sequence))
    findings.extend(check_exactly_once_across_epochs(sequence))
    findings.extend(check_fence_completeness(sequence))
    findings.extend(check_join_clean_prefix(sequence))
    findings.extend(check_leaver_drained(sequence))
    return findings
