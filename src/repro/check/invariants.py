"""Runtime verification of ordering invariants over a completed run.

Where :mod:`repro.check.graph_verify` re-proves *static* graph properties
(C1/C2), this module audits what a simulation actually **did**: it reads
the delivery logs out of a (quiescent) :class:`~repro.core.protocol.
OrderingFabric` and re-checks the paper's end-to-end guarantees, plus the
liveness properties a fault-injection campaign puts at risk.  The chaos
runner (:mod:`repro.faults.campaign`) calls :func:`verify_run` after every
run; tests and the ``repro chaos`` CLI gate on an empty finding list.

Checks (``RT3xx`` codes, tool ``runtime-verify``):

* **RT300 group order** — all members of a group delivered the group's
  messages in the identical order (the paper's per-group total order).
* **RT301 duplicate delivery** — no host delivered the same message twice
  (exactly-once despite retransmission, crash recovery, and failover).
* **RT302 missing delivery** — every published message reached every
  member of its destination group (skipped with ``complete=False`` for
  runs that legitimately abandon traffic, e.g. exhausted link budgets).
* **RT303 residual buffering** — no host still holds undeliverable
  messages in its hold-back buffer (no sequencing gap survived the run).
* **RT304 publisher FIFO** — each receiver delivered any one publisher's
  messages to a group in publication order.
* **RT305 mutual consistency** — any two hosts agree on the relative
  order of every pair of messages they both delivered, across groups
  (Theorem 1's consistency, observed rather than assumed).
* **RT306 causal order** — if a publisher delivered ``m`` strictly before
  publishing ``m'``, no host that delivered both saw ``m'`` first
  (requires publishers subscribing to the groups they publish to —
  Section 3.1's causality precondition; disable with ``causal=False``).
* **RT307 stability** — every message a host learned stable was in fact
  delivered by all members of its group (``track_stability`` runs only).
"""

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.check.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - keeps repro.check import-light
    from repro.core.protocol import OrderingFabric

TOOL = "runtime-verify"

#: Stop emitting findings for one check after this many (chaos runs with a
#: real bug would otherwise drown the report in thousands of repeats).
MAX_FINDINGS_PER_CHECK = 25


def _finding(code: str, message: str, anchor: str) -> Finding:
    return Finding(code=code, message=message, anchor=anchor, tool=TOOL)


def _delivered_ids(fabric: "OrderingFabric", host_id: int) -> List[int]:
    return [r.msg_id for r in fabric.host_processes[host_id].delivered]


def check_group_order(fabric: "OrderingFabric") -> List[Finding]:
    """RT300: members of each group delivered its messages identically."""
    findings: List[Finding] = []
    for group in sorted(fabric.membership.groups()):
        members = sorted(fabric.membership.members(group))
        reference: List[int] = []
        reference_host = -1
        for host_id in members:
            order = [
                r.msg_id
                for r in fabric.host_processes[host_id].delivered
                if r.stamp.group == group
            ]
            if reference_host < 0:
                reference = order
                reference_host = host_id
            elif order != reference:
                findings.append(
                    _finding(
                        "RT300",
                        f"hosts {reference_host} and {host_id} delivered "
                        f"group {group} in different orders "
                        f"({reference[:8]}... vs {order[:8]}...)",
                        f"group {group}",
                    )
                )
            if len(findings) >= MAX_FINDINGS_PER_CHECK:
                return findings
    return findings


def check_exactly_once(
    fabric: "OrderingFabric", complete: bool = True
) -> List[Finding]:
    """RT301/RT302: no duplicates; every message reached every member."""
    findings: List[Finding] = []
    counts: Dict[int, Dict[int, int]] = {}
    for host_id in sorted(fabric.host_processes):
        per_host: Dict[int, int] = {}
        for msg_id in _delivered_ids(fabric, host_id):
            per_host[msg_id] = per_host.get(msg_id, 0) + 1
        counts[host_id] = per_host
        duplicates = sorted(m for m, n in per_host.items() if n > 1)
        if duplicates:
            findings.append(
                _finding(
                    "RT301",
                    f"host {host_id} delivered messages more than once: "
                    f"{duplicates[:8]}",
                    f"host {host_id}",
                )
            )
    if not complete:
        return findings
    for msg_id in sorted(fabric.published):
        message = fabric.published[msg_id]
        missing = [
            member
            for member in sorted(fabric.membership.members(message.group))
            if counts.get(member, {}).get(msg_id, 0) == 0
        ]
        if missing:
            findings.append(
                _finding(
                    "RT302",
                    f"message {msg_id} (group {message.group}) never "
                    f"delivered at members {missing}",
                    f"msg {msg_id}",
                )
            )
        if len(findings) >= MAX_FINDINGS_PER_CHECK:
            break
    return findings


def check_no_residual_buffering(fabric: "OrderingFabric") -> List[Finding]:
    """RT303: the run quiesced with empty hold-back buffers everywhere."""
    return [
        _finding(
            "RT303",
            f"host {host_id} still buffers {pending} undeliverable "
            "message(s) — a sequencing gap survived the run",
            f"host {host_id}",
        )
        for host_id, pending in sorted(fabric.pending_messages().items())
    ]


def check_publisher_fifo(fabric: "OrderingFabric") -> List[Finding]:
    """RT304: per (publisher, group) delivery follows publication order.

    Message ids are allocated in publication order, so within one
    publisher and group the delivered id subsequence must be increasing.
    """
    findings: List[Finding] = []
    for host_id in sorted(fabric.host_processes):
        last_seen: Dict[Tuple[int, int], int] = {}
        for record in fabric.host_processes[host_id].delivered:
            key = (record.sender, record.stamp.group)
            previous = last_seen.get(key, -1)
            if record.msg_id < previous:
                findings.append(
                    _finding(
                        "RT304",
                        f"host {host_id} delivered message {record.msg_id} "
                        f"after {previous} from the same publisher "
                        f"{record.sender} in group {record.stamp.group}",
                        f"host {host_id}",
                    )
                )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
            else:
                last_seen[key] = record.msg_id
    return findings


def check_mutual_consistency(fabric: "OrderingFabric") -> List[Finding]:
    """RT305: pairwise agreement on the order of commonly delivered messages."""
    findings: List[Finding] = []
    host_ids = sorted(fabric.host_processes)
    orders = {h: _delivered_ids(fabric, h) for h in host_ids}
    for i, a in enumerate(host_ids):
        seq_a = orders[a]
        set_a = set(seq_a)
        for b in host_ids[i + 1 :]:
            seq_b = orders[b]
            common = set_a & set(seq_b)
            if not common:
                continue
            ordered_a = [m for m in seq_a if m in common]
            ordered_b = [m for m in seq_b if m in common]
            if ordered_a != ordered_b:
                findings.append(
                    _finding(
                        "RT305",
                        f"hosts {a} and {b} disagree on the relative order "
                        "of commonly delivered messages",
                        f"hosts {a},{b}",
                    )
                )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
    return findings


def check_causal_order(fabric: "OrderingFabric") -> List[Finding]:
    """RT306: publish-after-deliver dependencies respected everywhere.

    For each message ``m'``, its causal dependencies are the messages its
    publisher had *delivered* strictly before publishing ``m'``.  Any host
    delivering both must deliver the dependency first.  Deliveries at the
    same virtual instant as the publish are skipped (ordering within one
    instant is not observable from the logs).
    """
    findings: List[Finding] = []
    positions: Dict[int, Dict[int, int]] = {
        host_id: {
            r.msg_id: index
            for index, r in enumerate(fabric.host_processes[host_id].delivered)
        }
        for host_id in sorted(fabric.host_processes)
    }
    for msg_id in sorted(fabric.published):
        message = fabric.published[msg_id]
        publisher = fabric.host_processes.get(message.sender)
        if publisher is None:
            continue
        dependencies = [
            r.msg_id
            for r in publisher.delivered
            if r.time < message.publish_time
        ]
        if not dependencies:
            continue
        for host_id in sorted(positions):
            pos = positions[host_id]
            if msg_id not in pos:
                continue
            for dep in dependencies:
                dep_pos = pos.get(dep)
                if dep_pos is not None and dep_pos > pos[msg_id]:
                    findings.append(
                        _finding(
                            "RT306",
                            f"host {host_id} delivered {msg_id} before its "
                            f"causal dependency {dep} (publisher "
                            f"{message.sender} delivered {dep} before "
                            f"publishing {msg_id})",
                            f"host {host_id}",
                        )
                    )
                    if len(findings) >= MAX_FINDINGS_PER_CHECK:
                        return findings
    return findings


def check_stability(fabric: "OrderingFabric") -> List[Finding]:
    """RT307: stability notices imply delivery at every group member."""
    findings: List[Finding] = []
    if not fabric.track_stability:
        return findings
    delivered_sets = {
        host_id: set(_delivered_ids(fabric, host_id))
        for host_id in sorted(fabric.host_processes)
    }
    for host_id in sorted(fabric.host_processes):
        for msg_id in sorted(fabric.host_processes[host_id].stable_ids):
            message = fabric.published.get(msg_id)
            if message is None:
                continue
            missing = [
                member
                for member in sorted(fabric.membership.members(message.group))
                if msg_id not in delivered_sets.get(member, set())
            ]
            if missing:
                findings.append(
                    _finding(
                        "RT307",
                        f"host {host_id} learned message {msg_id} stable "
                        f"but members {missing} never delivered it",
                        f"msg {msg_id}",
                    )
                )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
    return findings


def verify_run(
    fabric: "OrderingFabric",
    complete: bool = True,
    causal: bool = True,
    mutual: bool = True,
) -> List[Finding]:
    """Audit a finished run against the paper's delivery guarantees.

    Parameters
    ----------
    fabric:
        A fabric whose simulation has run to quiescence.
    complete:
        Also require every published message delivered at every member
        (RT302) — disable for runs that intentionally abandon traffic.
    causal:
        Check publish-after-deliver causality (RT306); valid when
        publishers subscribe to the groups they publish to.
    mutual:
        Check pairwise cross-group agreement (RT305); quadratic in hosts,
        so very large sweeps may want it off.

    Returns the (possibly empty) list of findings, deterministic in order.
    """
    findings: List[Finding] = []
    findings.extend(check_group_order(fabric))
    findings.extend(check_exactly_once(fabric, complete=complete))
    findings.extend(check_no_residual_buffering(fabric))
    findings.extend(check_publisher_fifo(fabric))
    if mutual:
        findings.extend(check_mutual_consistency(fabric))
    if causal:
        findings.extend(check_causal_order(fabric))
    findings.extend(check_stability(fabric))
    return findings
