"""Runtime verification of ordering invariants over a completed run.

Where :mod:`repro.check.graph_verify` re-proves *static* graph properties
(C1/C2), this module audits what a simulation actually **did**: it reads
the delivery logs out of a (quiescent) :class:`~repro.core.protocol.
OrderingFabric` and re-checks the paper's end-to-end guarantees, plus the
liveness properties a fault-injection campaign puts at risk.  The chaos
runner (:mod:`repro.faults.campaign`) calls :func:`verify_run` after every
run; tests and the ``repro chaos`` CLI gate on an empty finding list.

Every check runs over a :class:`RunView` — a neutral, backend-free
projection of one run (per-host delivery logs, membership, published
messages, residual buffer depths).  A fabric is converted with
:func:`fabric_view`; the streaming monitors in :mod:`repro.obs.live`
build the *same* view incrementally from trace records and call the same
predicates, so the live verdicts and the post-hoc audit cannot drift.

Checks (``RT3xx`` codes, tool ``runtime-verify``):

* **RT300 group order** — all members of a group delivered the group's
  messages in the identical order (the paper's per-group total order).
* **RT301 duplicate delivery** — no host delivered the same message twice
  (exactly-once despite retransmission, crash recovery, and failover).
* **RT302 missing delivery** — every published message reached every
  member of its destination group (skipped with ``complete=False`` for
  runs that legitimately abandon traffic, e.g. exhausted link budgets).
* **RT303 residual buffering** — no host still holds undeliverable
  messages in its hold-back buffer (no sequencing gap survived the run).
* **RT304 publisher FIFO** — each receiver delivered any one publisher's
  messages to a group in publication order.
* **RT305 mutual consistency** — any two hosts agree on the relative
  order of every pair of messages they both delivered, across groups
  (Theorem 1's consistency, observed rather than assumed).
* **RT306 causal order** — if a publisher delivered ``m`` strictly before
  publishing ``m'``, no host that delivered both saw ``m'`` first
  (requires publishers subscribing to the groups they publish to —
  Section 3.1's causality precondition; disable with ``causal=False``).
* **RT307 stability** — every message a host learned stable was in fact
  delivered by all members of its group (``track_stability`` runs only).
"""

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Set, Tuple, Union

from repro.check.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - keeps repro.check import-light
    from repro.core.protocol import OrderingFabric

TOOL = "runtime-verify"

#: Stop emitting findings for one check after this many (chaos runs with a
#: real bug would otherwise drown the report in thousands of repeats).
MAX_FINDINGS_PER_CHECK = 25


# ---------------------------------------------------------------------------
# The run view: one neutral projection both auditors consume
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeliveredEntry:
    """One application delivery as the auditors see it."""

    msg_id: int
    group: int
    sender: int
    #: virtual time the receiver delivered (not published) the message
    time: float


@dataclass(frozen=True)
class PublishedEntry:
    """One published message as the auditors see it."""

    msg_id: int
    group: int
    sender: int
    publish_time: float


@dataclass
class RunView:
    """A backend-free projection of one run, sufficient for every RT3xx check.

    Built either from a finished fabric (:func:`fabric_view`) or
    incrementally from ``publish``/``deliver``/``buffer``/``drain`` trace
    records (:class:`repro.obs.live.LiveMonitor`).  Epoch fences never
    appear: they are consumed by the fabric before the delivery log and
    emit ``epoch_fence`` records instead of ``deliver`` ones, so both
    construction paths exclude them identically.
    """

    #: host -> application deliveries in delivery order
    delivered: Dict[int, List[DeliveredEntry]]
    #: group -> member set
    membership: Dict[int, FrozenSet[int]]
    #: msg_id -> publication facts (fences excluded)
    published: Dict[int, PublishedEntry]
    #: host -> messages still parked in the hold-back buffer (only > 0)
    pending: Dict[int, int] = field(default_factory=dict)
    track_stability: bool = False
    #: host -> msg ids learned stable (``track_stability`` runs only)
    stable_ids: Dict[int, Set[int]] = field(default_factory=dict)

    def hosts(self) -> List[int]:
        return sorted(self.delivered)

    def groups(self) -> List[int]:
        return sorted(self.membership)

    def members(self, group: int) -> FrozenSet[int]:
        return self.membership.get(group, frozenset())


RunLike = Union["OrderingFabric", RunView]


def fabric_view(fabric: "OrderingFabric") -> RunView:
    """Project a finished fabric into a :class:`RunView`."""
    return RunView(
        delivered={
            host_id: [
                DeliveredEntry(r.msg_id, r.stamp.group, r.sender, r.time)
                for r in process.delivered
            ]
            for host_id, process in fabric.host_processes.items()
        },
        membership={
            group: frozenset(fabric.membership.members(group))
            for group in fabric.membership.groups()
        },
        published={
            msg_id: PublishedEntry(
                msg_id, message.group, message.sender, message.publish_time
            )
            for msg_id, message in fabric.published.items()
        },
        pending=dict(fabric.pending_messages()),
        track_stability=fabric.track_stability,
        stable_ids={
            host_id: set(process.stable_ids)
            for host_id, process in fabric.host_processes.items()
        },
    )


def as_run_view(run: RunLike) -> RunView:
    """Coerce a fabric (or pass through a view) for the check functions."""
    if isinstance(run, RunView):
        return run
    return fabric_view(run)


def _finding(code: str, message: str, anchor: str) -> Finding:
    return Finding(code=code, message=message, anchor=anchor, tool=TOOL)


def _delivered_ids(view: RunView, host_id: int) -> List[int]:
    return [r.msg_id for r in view.delivered.get(host_id, [])]


def check_group_order(run: RunLike) -> List[Finding]:
    """RT300: members of each group delivered its messages identically."""
    view = as_run_view(run)
    findings: List[Finding] = []
    for group in view.groups():
        members = sorted(view.members(group))
        reference: List[int] = []
        reference_host = -1
        for host_id in members:
            order = [
                r.msg_id
                for r in view.delivered.get(host_id, [])
                if r.group == group
            ]
            if reference_host < 0:
                reference = order
                reference_host = host_id
            elif order != reference:
                findings.append(
                    _finding(
                        "RT300",
                        f"hosts {reference_host} and {host_id} delivered "
                        f"group {group} in different orders "
                        f"({reference[:8]}... vs {order[:8]}...)",
                        f"group {group}",
                    )
                )
            if len(findings) >= MAX_FINDINGS_PER_CHECK:
                return findings
    return findings


def check_exactly_once(run: RunLike, complete: bool = True) -> List[Finding]:
    """RT301/RT302: no duplicates; every message reached every member."""
    view = as_run_view(run)
    findings: List[Finding] = []
    counts: Dict[int, Dict[int, int]] = {}
    for host_id in view.hosts():
        per_host: Dict[int, int] = {}
        for msg_id in _delivered_ids(view, host_id):
            per_host[msg_id] = per_host.get(msg_id, 0) + 1
        counts[host_id] = per_host
        duplicates = sorted(m for m, n in per_host.items() if n > 1)
        if duplicates:
            findings.append(
                _finding(
                    "RT301",
                    f"host {host_id} delivered messages more than once: "
                    f"{duplicates[:8]}",
                    f"host {host_id}",
                )
            )
    if not complete:
        return findings
    for msg_id in sorted(view.published):
        message = view.published[msg_id]
        missing = [
            member
            for member in sorted(view.members(message.group))
            if counts.get(member, {}).get(msg_id, 0) == 0
        ]
        if missing:
            findings.append(
                _finding(
                    "RT302",
                    f"message {msg_id} (group {message.group}) never "
                    f"delivered at members {missing}",
                    f"msg {msg_id}",
                )
            )
        if len(findings) >= MAX_FINDINGS_PER_CHECK:
            break
    return findings


def check_no_residual_buffering(run: RunLike) -> List[Finding]:
    """RT303: the run quiesced with empty hold-back buffers everywhere."""
    view = as_run_view(run)
    return [
        _finding(
            "RT303",
            f"host {host_id} still buffers {pending} undeliverable "
            "message(s) — a sequencing gap survived the run",
            f"host {host_id}",
        )
        for host_id, pending in sorted(view.pending.items())
    ]


def check_publisher_fifo(run: RunLike) -> List[Finding]:
    """RT304: per (publisher, group) delivery follows publication order.

    Message ids are allocated in publication order, so within one
    publisher and group the delivered id subsequence must be increasing.
    """
    view = as_run_view(run)
    findings: List[Finding] = []
    for host_id in view.hosts():
        last_seen: Dict[Tuple[int, int], int] = {}
        for record in view.delivered.get(host_id, []):
            key = (record.sender, record.group)
            previous = last_seen.get(key, -1)
            if record.msg_id < previous:
                findings.append(
                    _finding(
                        "RT304",
                        f"host {host_id} delivered message {record.msg_id} "
                        f"after {previous} from the same publisher "
                        f"{record.sender} in group {record.group}",
                        f"host {host_id}",
                    )
                )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
            else:
                last_seen[key] = record.msg_id
    return findings


def check_mutual_consistency(run: RunLike) -> List[Finding]:
    """RT305: pairwise agreement on the order of commonly delivered messages."""
    view = as_run_view(run)
    findings: List[Finding] = []
    host_ids = view.hosts()
    orders = {h: _delivered_ids(view, h) for h in host_ids}
    for i, a in enumerate(host_ids):
        seq_a = orders[a]
        set_a = set(seq_a)
        for b in host_ids[i + 1 :]:
            seq_b = orders[b]
            common = set_a & set(seq_b)
            if not common:
                continue
            ordered_a = [m for m in seq_a if m in common]
            ordered_b = [m for m in seq_b if m in common]
            if ordered_a != ordered_b:
                findings.append(
                    _finding(
                        "RT305",
                        f"hosts {a} and {b} disagree on the relative order "
                        "of commonly delivered messages",
                        f"hosts {a},{b}",
                    )
                )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
    return findings


def check_causal_order(run: RunLike) -> List[Finding]:
    """RT306: publish-after-deliver dependencies respected everywhere.

    For each message ``m'``, its causal dependencies are the messages its
    publisher had *delivered* strictly before publishing ``m'``.  Any host
    delivering both must deliver the dependency first.  Deliveries at the
    same virtual instant as the publish are skipped (ordering within one
    instant is not observable from the logs).
    """
    view = as_run_view(run)
    findings: List[Finding] = []
    positions: Dict[int, Dict[int, int]] = {
        host_id: {
            r.msg_id: index
            for index, r in enumerate(view.delivered.get(host_id, []))
        }
        for host_id in view.hosts()
    }
    for msg_id in sorted(view.published):
        message = view.published[msg_id]
        dependencies = [
            r.msg_id
            for r in view.delivered.get(message.sender, [])
            if r.time < message.publish_time
        ]
        if not dependencies:
            continue
        for host_id in sorted(positions):
            pos = positions[host_id]
            if msg_id not in pos:
                continue
            for dep in dependencies:
                dep_pos = pos.get(dep)
                if dep_pos is not None and dep_pos > pos[msg_id]:
                    findings.append(
                        _finding(
                            "RT306",
                            f"host {host_id} delivered {msg_id} before its "
                            f"causal dependency {dep} (publisher "
                            f"{message.sender} delivered {dep} before "
                            f"publishing {msg_id})",
                            f"host {host_id}",
                        )
                    )
                    if len(findings) >= MAX_FINDINGS_PER_CHECK:
                        return findings
    return findings


def check_stability(run: RunLike) -> List[Finding]:
    """RT307: stability notices imply delivery at every group member."""
    view = as_run_view(run)
    findings: List[Finding] = []
    if not view.track_stability:
        return findings
    delivered_sets = {
        host_id: set(_delivered_ids(view, host_id))
        for host_id in view.hosts()
    }
    for host_id in sorted(view.stable_ids):
        for msg_id in sorted(view.stable_ids[host_id]):
            message = view.published.get(msg_id)
            if message is None:
                continue
            missing = [
                member
                for member in sorted(view.members(message.group))
                if msg_id not in delivered_sets.get(member, set())
            ]
            if missing:
                findings.append(
                    _finding(
                        "RT307",
                        f"host {host_id} learned message {msg_id} stable "
                        f"but members {missing} never delivered it",
                        f"msg {msg_id}",
                    )
                )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
    return findings


def verify_run(
    run: RunLike,
    complete: bool = True,
    causal: bool = True,
    mutual: bool = True,
) -> List[Finding]:
    """Audit a finished run against the paper's delivery guarantees.

    Parameters
    ----------
    run:
        A fabric whose simulation has run to quiescence, or an
        already-built :class:`RunView` (the streaming monitors pass one,
        so the live verdicts go through the exact same predicates).
    complete:
        Also require every published message delivered at every member
        (RT302) — disable for runs that intentionally abandon traffic.
    causal:
        Check publish-after-deliver causality (RT306); valid when
        publishers subscribe to the groups they publish to.
    mutual:
        Check pairwise cross-group agreement (RT305); quadratic in hosts,
        so very large sweeps may want it off.

    Returns the (possibly empty) list of findings, deterministic in order.
    """
    view = as_run_view(run)
    findings: List[Finding] = []
    findings.extend(check_group_order(view))
    findings.extend(check_exactly_once(view, complete=complete))
    findings.extend(check_no_residual_buffering(view))
    findings.extend(check_publisher_fifo(view))
    if mutual:
        findings.extend(check_mutual_consistency(view))
    if causal:
        findings.extend(check_causal_order(view))
    findings.extend(check_stability(view))
    return findings
