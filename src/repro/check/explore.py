"""Schedule-space model checker for small ordering-fabric configurations.

``repro check`` proves the *graph* (GV2xx) and audits *one* schedule per
run (RT3xx).  This module closes the gap between the two: it drives the
unmodified protocol core over the controller-driven
:class:`~repro.runtime.explore_backend.ExploreTransport` and enumerates
**every** reduced interleaving of packet deliveries and fault-plan timers
for a small topology, checking machine-readable safety invariants at each
terminal (quiescent) state:

* **MC400 pairwise order** — receivers sharing ≥ 2 groups agree on the
  relative order of commonly delivered messages (the paper's Theorem 1,
  checked per adversarial schedule rather than per simulated run).
* **MC401 duplicate delivery** — no host delivered a message twice.
* **MC402 dropped delivery** — every published message reached every
  member (skipped when the fault plan legitimately abandons traffic).
* **MC403 hold-back drained** — no residual buffering at quiescence.
* **MC404 atom-sequence contiguity** — every delivered stamp carries a
  sequence number from each active sequencing atom of its group's path,
  and per (host, atom) the observed numbers are strictly increasing
  (contiguous from 1 across the run when complete).
* **MC405 group-sequence contiguity** — per (host, group) delivered
  group-local sequence numbers are strictly increasing, and exactly
  ``1..k`` when the run is complete.
* **MC406 graph invariants** — C1/C2 etc. on the live graph via
  :func:`repro.check.graph_verify.verify_graph` (checked once per
  exploration; the graph is schedule-independent).

**State-space model.**  A state is the full fabric state; a transition is
either (a) delivering the head of one non-empty FIFO wire queue, (b)
firing the earliest pending *fault-plan* timer, or (c) — only at delivery
quiescence — firing the earliest *derived* timer (retransmissions,
service completions).  Deferring derived timers to quiescence is a
feasibility-preserving reduction: a retransmission that fires while its
original copy is still in flight is deduplicated by the reliable link
layer, so interleaving it cannot change any delivered order, only
multiply equivalent schedules.

**Partial-order reduction.**  Two delivery transitions with different
destination processes commute: each pops its own queue, mutates only the
destination's protocol state, and appends only to queues keyed by that
destination (loss draws are per-channel — see
:mod:`repro.runtime.explore_backend`).  The DFS carries *sleep sets*
seeded with explored independent siblings, so commuting interleavings are
explored once.  Timer transitions are treated as globally dependent.

A violation is captured as a replayable **counterexample**: the scenario
config plus the exact transition-key schedule.  The harness then shrinks
the published-message set greedily (re-exploring after each removal) and
replays the minimal schedule with tracing enabled so the ``repro
explain`` machinery (:mod:`repro.obs.forensics`) can render the
implicated messages' journeys.
"""

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.check.findings import Finding
from repro.check.graph_verify import verify_graph
from repro.runtime.explore_backend import ExploreTransport

TOOL = "model-check"

COUNTEREXAMPLE_FORMAT = "repro-explore-counterexample"
COUNTEREXAMPLE_VERSION = 1

#: stop emitting findings per check (mirrors repro.check.invariants)
MAX_FINDINGS_PER_CHECK = 25

#: retransmit timeout for crash scenarios (fault injection needs the
#: reliable link layer even on loss-free wires)
CRASH_RETRANSMIT_TIMEOUT = 5.0


def _finding(code: str, message: str, anchor: str) -> Finding:
    return Finding(code=code, message=message, anchor=anchor, tool=TOOL)


# ---------------------------------------------------------------------------
# Scenario configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExploreConfig:
    """One model-checking scenario: topology shape, workload, budget.

    Group ``g`` has members ``{(g + j) % hosts : j < 3}``, which makes
    consecutive groups overlap in ≥ 2 hosts — the regime where overlap
    atoms (and hence cross-group ordering) exist.  Each round publishes
    one message per group, rotating the sender through the members.
    """

    groups: int = 2
    hosts: int = 3
    messages: int = 1          # publish rounds (one message per group each)
    seed: int = 0
    loss_rate: float = 0.0
    #: (node_id, at, duration) crash actions; duration None = permanent
    crashes: Tuple[Tuple[int, float, Optional[float]], ...] = ()
    #: seeded protocol mutation (see MUTATIONS) for checker validation
    mutate: Optional[str] = None
    max_schedules: int = 5000
    max_depth: int = 200
    #: publish indices suppressed (counterexample minimization)
    skip_messages: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.groups < 1 or self.hosts < 2:
            raise ValueError("explore needs >= 1 group and >= 2 hosts")
        if self.mutate is not None and self.mutate not in MUTATIONS:
            raise ValueError(
                f"unknown mutation {self.mutate!r} "
                f"(have: {', '.join(sorted(MUTATIONS))})"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "groups": self.groups,
            "hosts": self.hosts,
            "messages": self.messages,
            "seed": self.seed,
            "loss_rate": self.loss_rate,
            "crashes": [list(c) for c in self.crashes],
            "mutate": self.mutate,
            "max_schedules": self.max_schedules,
            "max_depth": self.max_depth,
            "skip_messages": list(self.skip_messages),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExploreConfig":
        return cls(
            groups=int(data["groups"]),
            hosts=int(data["hosts"]),
            messages=int(data.get("messages", 1)),
            seed=int(data.get("seed", 0)),
            loss_rate=float(data.get("loss_rate", 0.0)),
            crashes=tuple(
                (int(n), float(at), None if dur is None else float(dur))
                for n, at, dur in data.get("crashes", [])
            ),
            mutate=data.get("mutate"),
            max_schedules=int(data.get("max_schedules", 5000)),
            max_depth=int(data.get("max_depth", 200)),
            skip_messages=tuple(int(i) for i in data.get("skip_messages", [])),
        )

    def layout(self) -> Dict[int, List[int]]:
        """Group -> sorted member host ids."""
        span = min(3, self.hosts)
        return {
            g: sorted({(g + j) % self.hosts for j in range(span)})
            for g in range(self.groups)
        }

    def publishes(self) -> List[Tuple[int, int]]:
        """The full (sender, group) publish plan, before ``skip_messages``."""
        layout = self.layout()
        plan: List[Tuple[int, int]] = []
        for round_index in range(self.messages):
            for group in range(self.groups):
                members = layout[group]
                plan.append((members[round_index % len(members)], group))
        return plan

    def label(self) -> str:
        parts = [f"groups={self.groups}", f"hosts={self.hosts}",
                 f"messages={self.messages}", f"seed={self.seed}"]
        if self.loss_rate:
            parts.append(f"loss={self.loss_rate}")
        if self.crashes:
            parts.append(f"crashes={len(self.crashes)}")
        if self.mutate:
            parts.append(f"mutate={self.mutate}")
        return f"explore({', '.join(parts)})"


class _Context:
    """Reusable substrate shared by every replay of one exploration.

    Topology, routing, membership, graph, and placement are all
    schedule-independent, so they are built once; only the fabric (and
    its transport) is rebuilt per schedule.
    """

    def __init__(self, config: ExploreConfig):
        # Heavy imports stay local so `import repro.check` stays light.
        from repro.experiments.common import ExperimentEnv

        self.config = config
        self.env = ExperimentEnv(n_hosts=config.hosts, seed=config.seed)
        layout = {g: frozenset(m) for g, m in config.layout().items()}
        self.membership = self.env.membership_from(layout)
        self.graph = self.env.build_graph(layout, seed=config.seed)
        self.placement = self.env.build_placement(self.graph, seed=config.seed)
        self.publishes = config.publishes()
        #: MC402/contiguity hold only when no fault can abandon traffic
        self.complete_workload = all(
            duration is not None for _node, _at, duration in config.crashes
        )


class ScheduleDivergence(RuntimeError):
    """A recorded schedule no longer matches the reconstructed state."""


class _Transition(NamedTuple):
    """One enabled transition, addressed by a replay-stable key."""

    key: Tuple[Any, ...]
    kind: str                 # "deliver" | "plan" | "timer"
    owner: Optional[str]      # destination process (deliveries only)


def _independent(a: _Transition, b: _Transition) -> bool:
    """Whether two transitions commute (POR independence relation).

    Only deliveries to *different* processes are independent; timer
    transitions (fault actions, retransmissions) touch shared state and
    are conservatively dependent with everything.
    """
    return (
        a.kind == "deliver"
        and b.kind == "deliver"
        and a.owner != b.owner
    )


class _Run:
    """One reconstructed execution: fabric + enabled-transition surface."""

    def __init__(self, ctx: _Context, trace: bool = False):
        config = ctx.config
        self.runtime = ExploreTransport(
            seed=config.seed, loss_rate=config.loss_rate
        )
        kwargs: Dict[str, Any] = {}
        if config.crashes:
            kwargs["retransmit_timeout"] = CRASH_RETRANSMIT_TIMEOUT
        self.fabric = ctx.env.build_fabric(
            ctx.membership,
            seed=config.seed,
            runtime=self.runtime,
            trace=trace,
            graph=ctx.graph,
            placement=ctx.placement,
            **kwargs,
        )
        if config.mutate is not None:
            MUTATIONS[config.mutate](self.fabric)
        if config.crashes:
            from repro.faults.plan import CrashNode, FaultPlan

            plan = FaultPlan()
            for node_id, at, duration in config.crashes:
                if node_id not in self.fabric.node_processes:
                    raise ValueError(
                        f"crash targets unknown sequencing node {node_id} "
                        f"(have {sorted(self.fabric.node_processes)})"
                    )
                plan.add(CrashNode(at=at, node_id=node_id, duration=duration))
            plan.apply(self.fabric)
        # Everything scheduled so far is the fault plan; all later timers
        # (retransmissions, service completions) are derived.
        self.runtime.scheduler.seal_plan()
        for index, (sender, group) in enumerate(ctx.publishes):
            if index not in config.skip_messages:
                self.fabric.publish(sender, group)

    def enabled(self) -> List[_Transition]:
        transitions: List[_Transition] = []
        for label, channel in self.runtime.transport.delivery_sources():
            transitions.append(
                _Transition(
                    key=("deliver",) + label,
                    kind="deliver",
                    owner=repr(channel.dst.name),
                )
            )
        scheduler = self.runtime.scheduler
        if scheduler.timers(plan=True):
            transitions.append(_Transition(("plan-timer",), "plan", None))
        if not transitions and scheduler.timers(plan=False):
            transitions.append(_Transition(("derived-timer",), "timer", None))
        return transitions

    def execute(self, transition: _Transition) -> None:
        if transition.kind == "deliver":
            label = transition.key[1:]
            for candidate, channel in self.runtime.transport.delivery_sources():
                if candidate == label:
                    channel.deliver_head()
                    return
            raise ScheduleDivergence(f"no deliverable channel {label}")
        timers = self.runtime.scheduler.timers(
            plan=(transition.kind == "plan")
        )
        if not timers:
            raise ScheduleDivergence(f"no live {transition.kind} timer")
        self.runtime.scheduler.fire(timers[0])


# ---------------------------------------------------------------------------
# Terminal-state invariants (MC400-MC405; MC406 is per-exploration)
# ---------------------------------------------------------------------------


def check_terminal(fabric: Any, complete: bool = True) -> List[Finding]:
    """Audit one quiescent terminal state against MC400-MC405."""
    findings: List[Finding] = []
    findings.extend(_check_pairwise_order(fabric))
    findings.extend(_check_exactly_once(fabric, complete))
    findings.extend(_check_holdback_drained(fabric))
    findings.extend(_check_atom_contiguity(fabric, complete))
    findings.extend(_check_group_contiguity(fabric, complete))
    return findings


def _delivered(fabric: Any, host_id: int) -> List[Any]:
    return fabric.host_processes[host_id].delivered


def _check_pairwise_order(fabric: Any) -> List[Finding]:
    """MC400: hosts sharing >= 2 groups agree on common delivery order."""
    findings: List[Finding] = []
    host_ids = sorted(fabric.host_processes)
    groups_of = {
        h: set(fabric.membership.groups_of(h)) for h in host_ids
    }
    orders = {
        h: [r.msg_id for r in _delivered(fabric, h)] for h in host_ids
    }
    for i, a in enumerate(host_ids):
        for b in host_ids[i + 1:]:
            shared = groups_of[a] & groups_of[b]
            if len(shared) < 2:
                continue
            common = set(orders[a]) & set(orders[b])
            ordered_a = [m for m in orders[a] if m in common]
            ordered_b = [m for m in orders[b] if m in common]
            if ordered_a != ordered_b:
                findings.append(
                    _finding(
                        "MC400",
                        f"hosts {a} and {b} (sharing groups "
                        f"{sorted(shared)}) delivered common messages in "
                        f"different orders ({ordered_a[:8]} vs "
                        f"{ordered_b[:8]})",
                        f"hosts {a},{b}",
                    )
                )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
    return findings


def _check_exactly_once(fabric: Any, complete: bool) -> List[Finding]:
    """MC401 (duplicates) and MC402 (drops, complete runs only)."""
    findings: List[Finding] = []
    counts: Dict[int, Dict[int, int]] = {}
    for host_id in sorted(fabric.host_processes):
        per_host: Dict[int, int] = {}
        for record in _delivered(fabric, host_id):
            per_host[record.msg_id] = per_host.get(record.msg_id, 0) + 1
        counts[host_id] = per_host
        duplicates = sorted(m for m, n in per_host.items() if n > 1)
        if duplicates:
            findings.append(
                _finding(
                    "MC401",
                    f"host {host_id} delivered messages more than once: "
                    f"{duplicates[:8]}",
                    f"host {host_id}",
                )
            )
    if not complete:
        return findings
    for msg_id in sorted(fabric.published):
        message = fabric.published[msg_id]
        missing = [
            member
            for member in sorted(fabric.membership.members(message.group))
            if counts.get(member, {}).get(msg_id, 0) == 0
        ]
        if missing:
            findings.append(
                _finding(
                    "MC402",
                    f"message {msg_id} (group {message.group}) never "
                    f"delivered at members {missing}",
                    f"msg {msg_id}",
                )
            )
        if len(findings) >= MAX_FINDINGS_PER_CHECK:
            break
    return findings


def _check_holdback_drained(fabric: Any) -> List[Finding]:
    """MC403: quiescence implies empty hold-back buffers everywhere."""
    return [
        _finding(
            "MC403",
            f"host {host_id} still buffers {pending} undeliverable "
            "message(s) at quiescence — a sequencing gap survived "
            "the schedule",
            f"host {host_id}",
        )
        for host_id, pending in sorted(fabric.pending_messages().items())
    ]


def _stamping_atoms(fabric: Any) -> Dict[int, List[Any]]:
    """Group -> active atoms that must stamp its messages, in path order."""
    graph = fabric.graph
    expected: Dict[int, List[Any]] = {}
    for group in sorted(fabric.membership.groups()):
        expected[group] = [
            atom
            for atom in graph.group_path(group)
            if atom.sequences_group(group)
            and not atom.is_ingress_only
            and atom not in graph.retired
        ]
    return expected


def _check_atom_contiguity(fabric: Any, complete: bool) -> List[Finding]:
    """MC404: every stamp carries its path's atom seqs, without gaps."""
    findings: List[Finding] = []
    expected = _stamping_atoms(fabric)
    seen_global: Dict[Any, Set[int]] = {}
    for host_id in sorted(fabric.host_processes):
        last: Dict[Any, int] = {}
        for record in _delivered(fabric, host_id):
            group = record.stamp.group
            for atom in expected.get(group, ()):
                seq = record.stamp.seq_of(atom)
                if seq is None:
                    findings.append(
                        _finding(
                            "MC404",
                            f"host {host_id} delivered message "
                            f"{record.msg_id} (group {group}) whose stamp "
                            f"carries no sequence number from atom {atom!r}",
                            f"host {host_id}",
                        )
                    )
                    if len(findings) >= MAX_FINDINGS_PER_CHECK:
                        return findings
                    continue
                seen_global.setdefault(atom, set()).add(seq)
                previous = last.get(atom)
                if previous is not None and seq <= previous:
                    findings.append(
                        _finding(
                            "MC404",
                            f"host {host_id} saw atom {atom!r} sequence "
                            f"{seq} after {previous} — per-atom order "
                            "regressed",
                            f"host {host_id}",
                        )
                    )
                    if len(findings) >= MAX_FINDINGS_PER_CHECK:
                        return findings
                last[atom] = seq
    if complete:
        for atom in sorted(seen_global, key=repr):
            seqs = seen_global[atom]
            expected_range = set(range(1, max(seqs) + 1))
            gaps = sorted(expected_range - seqs)
            if gaps:
                findings.append(
                    _finding(
                        "MC404",
                        f"atom {atom!r} sequence numbers have gaps "
                        f"{gaps[:8]} — some stamped message vanished",
                        f"atom {atom!r}",
                    )
                )
                if len(findings) >= MAX_FINDINGS_PER_CHECK:
                    return findings
    return findings


def _check_group_contiguity(fabric: Any, complete: bool) -> List[Finding]:
    """MC405: per (host, group) group-local seqs increase (1..k complete)."""
    findings: List[Finding] = []
    for host_id in sorted(fabric.host_processes):
        per_group: Dict[int, List[int]] = {}
        for record in _delivered(fabric, host_id):
            per_group.setdefault(record.stamp.group, []).append(
                record.stamp.group_seq
            )
        for group in sorted(per_group):
            seqs = per_group[group]
            increasing = all(b > a for a, b in zip(seqs, seqs[1:]))
            if not increasing:
                findings.append(
                    _finding(
                        "MC405",
                        f"host {host_id} delivered group {group} "
                        f"sequence numbers out of order: {seqs[:10]}",
                        f"host {host_id}",
                    )
                )
            elif complete and seqs != list(range(1, len(seqs) + 1)):
                findings.append(
                    _finding(
                        "MC405",
                        f"host {host_id} delivered group {group} "
                        f"sequence numbers {seqs[:10]} — not the "
                        f"contiguous 1..{len(seqs)}",
                        f"host {host_id}",
                    )
                )
            if len(findings) >= MAX_FINDINGS_PER_CHECK:
                return findings
    return findings


def _graph_findings(ctx: _Context) -> List[Finding]:
    """MC406: C1/C2 + structural invariants on the (schedule-independent)
    live graph, via the existing certificate verifier."""
    return [
        _finding(
            "MC406",
            f"{gv.code}: {gv.message}",
            gv.anchor or "<graph>",
        )
        for gv in verify_graph(ctx.graph, ctx.placement)
    ]


# ---------------------------------------------------------------------------
# Seeded mutations (checker validation harness)
# ---------------------------------------------------------------------------


def _mutate_skip_stamp(fabric: Any) -> None:
    """First message through the first overlap atom skips its stamp."""
    for node_id in sorted(fabric.node_processes):
        process = fabric.node_processes[node_id]
        for atom_id in sorted(process.atom_runtimes, key=repr):
            if atom_id.is_ingress_only:
                continue
            runtime = process.atom_runtimes[atom_id]
            original = runtime.process
            state = {"armed": True}

            def patched(message, _runtime=runtime, _original=original,
                        _state=state):
                if _state["armed"]:
                    _state["armed"] = False
                    # A retired atom passes messages through unstamped;
                    # faking retirement for one visit reproduces a
                    # lost-stamp bug without touching protocol code.
                    _runtime.retired = True
                    try:
                        return _original(message)
                    finally:
                        _runtime.retired = False
                return _original(message)

            runtime.process = patched  # type: ignore[method-assign]
            return
    raise ValueError("skip-stamp needs at least one overlap atom")


def _mutate_drop_delivery(fabric: Any) -> None:
    """The first distribution packet is silently discarded."""
    from repro.core.protocol import DeliverPacket

    original = fabric._transmit
    state = {"armed": True}

    def patched(src, dst, packet, _original=original, _state=state):
        if _state["armed"] and isinstance(packet, DeliverPacket):
            _state["armed"] = False
            return
        _original(src, dst, packet)

    fabric._transmit = patched  # type: ignore[method-assign]


def _mutate_dup_delivery(fabric: Any) -> None:
    """One host's hold-back releases its first delivery twice."""
    host = fabric.host_processes[min(fabric.host_processes)]
    original = host.delivery.on_receive
    state = {"armed": True}

    def patched(stamp, payload, _original=original, _state=state):
        released = _original(stamp, payload)
        if _state["armed"] and released:
            _state["armed"] = False
            return list(released) + list(released)
        return released

    host.delivery.on_receive = patched  # type: ignore[method-assign]


MUTATIONS = {
    "skip-stamp": _mutate_skip_stamp,
    "drop-delivery": _mutate_drop_delivery,
    "dup-delivery": _mutate_dup_delivery,
}


# ---------------------------------------------------------------------------
# Sleep-set DFS over schedules
# ---------------------------------------------------------------------------


class _Frame:
    """One decision point on the DFS path."""

    __slots__ = ("enabled", "sleep", "done", "choice")

    def __init__(
        self,
        enabled: List[_Transition],
        sleep: frozenset,
        choice: _Transition,
    ):
        self.enabled = enabled
        self.sleep = sleep
        self.done: List[_Transition] = []
        self.choice = choice


@dataclass
class ExploreResult:
    """Deterministic exploration statistics plus any violations."""

    config: ExploreConfig
    #: completed descents (terminal + sleep-blocked + depth-truncated)
    schedules: int = 0
    terminal_states: int = 0
    transitions: int = 0
    sleep_blocked: int = 0
    depth_truncated: int = 0
    #: False when the schedule budget stopped the search early
    exhausted: bool = True
    violations: List[Finding] = field(default_factory=list)
    #: transition-key schedule of the first violating terminal state
    counterexample_schedule: Optional[List[Tuple[Any, ...]]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def stats(self) -> Dict[str, Any]:
        return {
            "schedules": self.schedules,
            "terminal_states": self.terminal_states,
            "transitions": self.transitions,
            "sleep_blocked": self.sleep_blocked,
            "depth_truncated": self.depth_truncated,
            "exhausted": self.exhausted,
        }


def explore(
    config: ExploreConfig, ctx: Optional[_Context] = None
) -> ExploreResult:
    """Enumerate the reduced schedule space; stop at the first violation.

    Stateless-search style: each schedule replays its decided prefix
    against a fresh fabric (no state snapshotting), then extends
    first-choice to a terminal state.  Sleep sets prune interleavings of
    independent deliveries.
    """
    if ctx is None:
        ctx = _Context(config)
    result = ExploreResult(config=config)
    result.violations.extend(_graph_findings(ctx))
    if result.violations:
        return result

    frames: List[_Frame] = []

    def child_sleep(
        sleep: frozenset, done: Sequence[_Transition], chosen: _Transition
    ) -> frozenset:
        pool = set(sleep) | set(done)
        return frozenset(s for s in pool if _independent(s, chosen))

    def descend(run: _Run, sleep: frozenset) -> Tuple[str, _Run]:
        while True:
            enabled = run.enabled()
            if not enabled:
                return "terminal", run
            slept = {s.key for s in sleep}
            candidates = [t for t in enabled if t.key not in slept]
            if not candidates:
                result.sleep_blocked += 1
                return "blocked", run
            if len(frames) >= config.max_depth:
                result.depth_truncated += 1
                return "deep", run
            choice = candidates[0]
            frames.append(_Frame(enabled, sleep, choice))
            run.execute(choice)
            result.transitions += 1
            sleep = child_sleep(sleep, (), choice)

    def finish(outcome: str, run: _Run) -> bool:
        result.schedules += 1
        if outcome != "terminal":
            return False
        result.terminal_states += 1
        complete = ctx.complete_workload and not run.fabric.link_failures
        findings = check_terminal(run.fabric, complete=complete)
        if findings:
            result.violations.extend(findings)
            result.counterexample_schedule = [f.choice.key for f in frames]
            return True
        return False

    outcome, run = descend(_Run(ctx), frozenset())
    stop = finish(outcome, run)
    while not stop and frames:
        if result.schedules >= config.max_schedules:
            result.exhausted = False
            break
        frame = frames[-1]
        frame.done.append(frame.choice)
        blocked = {s.key for s in frame.sleep} | {d.key for d in frame.done}
        remaining = [t for t in frame.enabled if t.key not in blocked]
        if not remaining:
            frames.pop()
            continue
        frame.choice = remaining[0]
        run = _Run(ctx)
        for prior in frames[:-1]:
            run.execute(prior.choice)
        run.execute(frame.choice)
        result.transitions += len(frames)
        outcome, run = descend(
            run, child_sleep(frame.sleep, frame.done[:-1], frame.choice)
        )
        stop = finish(outcome, run)
    return result


# ---------------------------------------------------------------------------
# Counterexamples: capture, minimize, replay
# ---------------------------------------------------------------------------


def counterexample_document(
    config: ExploreConfig,
    schedule: Sequence[Tuple[Any, ...]],
    findings: Sequence[Finding],
) -> Dict[str, Any]:
    """JSON-serializable, replayable counterexample."""
    return {
        "format": COUNTEREXAMPLE_FORMAT,
        "version": COUNTEREXAMPLE_VERSION,
        "config": config.to_dict(),
        "schedule": [list(key) for key in schedule],
        "findings": [f.to_dict() for f in findings],
    }


def minimize_counterexample(
    config: ExploreConfig, baseline: ExploreResult
) -> Tuple[ExploreConfig, ExploreResult]:
    """Greedy shrink of the published-message set.

    One pass over the publish plan: drop each message in turn, re-explore,
    and keep the drop when a violation with an overlapping code set
    survives.  Sound (the result still violates) if not globally minimal.
    """
    target_codes = {f.code for f in baseline.violations}
    best_config, best_result = config, baseline
    for index in range(len(config.publishes())):
        if index in best_config.skip_messages:
            continue
        trial = replace(
            best_config,
            skip_messages=tuple(
                sorted(set(best_config.skip_messages) | {index})
            ),
        )
        trial_result = explore(trial)
        if (
            trial_result.counterexample_schedule is not None
            and {f.code for f in trial_result.violations} & target_codes
        ):
            best_config, best_result = trial, trial_result
    return best_config, best_result


def replay_schedule(
    config: ExploreConfig,
    schedule: Sequence[Sequence[Any]],
    trace: bool = True,
) -> Tuple[Any, List[Finding]]:
    """Re-execute a recorded schedule; returns (fabric, findings).

    Raises :class:`ScheduleDivergence` when the schedule no longer
    matches the reconstructed state (e.g. edited config).
    """
    ctx = _Context(config)
    run = _Run(ctx, trace=trace)
    for raw in schedule:
        key = tuple(raw)
        enabled = {t.key: t for t in run.enabled()}
        if key not in enabled:
            raise ScheduleDivergence(
                f"schedule step {key} not enabled "
                f"(enabled: {sorted(enabled)})"
            )
        run.execute(enabled[key])
    complete = ctx.complete_workload and not run.fabric.link_failures
    return run.fabric, check_terminal(run.fabric, complete=complete)


def implicated_messages(findings: Sequence[Finding]) -> List[int]:
    """Message ids named by ``msg N`` anchors (empty = none named)."""
    ids: Set[int] = set()
    for finding in findings:
        anchor = finding.anchor or ""
        if anchor.startswith("msg "):
            try:
                ids.add(int(anchor.split()[1]))
            except (IndexError, ValueError):
                continue
    return sorted(ids)


def render_counterexample_trace(fabric: Any, findings: Sequence[Finding]) -> str:
    """Render the implicated messages' journeys from a traced replay.

    Reuses the ``repro explain`` forensics machinery so a counterexample
    reads like any other ordering post-mortem.
    """
    from repro.obs.forensics import JourneyIndex, render_journey

    index = JourneyIndex(fabric.trace)
    msg_ids = implicated_messages(findings) or sorted(fabric.published)
    sections: List[str] = []
    for msg_id in msg_ids:
        journey = index.journey(msg_id)
        if journey is not None:
            sections.append(render_journey(journey))
    return "\n\n".join(sections)


# ---------------------------------------------------------------------------
# `repro check --explore` integration
# ---------------------------------------------------------------------------


#: budgeted smoke scenarios for the check runner / CI explore job
CHECK_SCENARIOS: Tuple[ExploreConfig, ...] = (
    ExploreConfig(groups=2, hosts=3, messages=1, seed=0,
                  max_schedules=400, max_depth=80),
    ExploreConfig(groups=3, hosts=4, messages=1, seed=1,
                  max_schedules=400, max_depth=120),
)


def run_explore_check(
    scenarios: Sequence[ExploreConfig] = CHECK_SCENARIOS,
) -> Tuple[List[Finding], int]:
    """Model-check the smoke scenarios; returns (findings, schedules)."""
    findings: List[Finding] = []
    schedules = 0
    for config in scenarios:
        result = explore(config)
        schedules += result.schedules
        findings.extend(
            Finding(
                code=f.code,
                message=f"{f.message} (in {config.label()})",
                severity=f.severity,
                anchor=f.anchor,
                tool=f.tool,
            )
            for f in result.violations
        )
    return findings, schedules


def explore_report(
    result: ExploreResult,
    counterexample: Optional[Dict[str, Any]] = None,
) -> str:
    """JSON report for the ``repro explore`` CLI."""
    payload: Dict[str, Any] = {
        "tool": "repro.explore",
        "version": 1,
        "config": result.config.to_dict(),
        "stats": result.stats(),
        "summary": {"violations": len(result.violations)},
        "findings": [f.to_dict() for f in result.violations],
        "counterexample": counterexample,
    }
    return json.dumps(payload, indent=2, sort_keys=False)
