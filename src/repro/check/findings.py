"""Shared finding model for the static-analysis layer.

Both analyzers — the AST determinism linter (:mod:`repro.check.simlint`)
and the sequencing-graph invariant verifier
(:mod:`repro.check.graph_verify`) — report through one
:class:`Finding` type so the CLI, CI job, and tests consume a single
machine-readable shape.  A finding is anchored either to a source
location (``file``/``line``, simlint) or to a protocol object
(``anchor``, e.g. an atom id or group id, graph verifier); both anchors
may be absent for tool-level errors (unreadable file, malformed
certificate).
"""

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Finding severities, most severe first.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)

#: Schema version of the JSON report emitted by :func:`render_json`.
#: Version 2: findings from every analyzer (simlint, graph verify,
#: model-check, async-lint) merge into one report, and a crashed
#: analyzer is recorded as a ``CK000`` finding instead of aborting the
#: run.  The field shapes are unchanged from version 1.
REPORT_VERSION = 2


@dataclass(frozen=True)
class Finding:
    """One violation reported by an analyzer.

    Attributes
    ----------
    code:
        Stable rule/check identifier (``SL1xx`` for simlint rules,
        ``GV2xx`` for graph-verifier checks).
    message:
        Human-readable description of the specific violation.
    severity:
        ``"error"`` or ``"warning"``; errors fail ``repro check``.
    file, line:
        Source anchor (simlint findings).
    anchor:
        Protocol-object anchor (graph-verifier findings), e.g.
        ``"Q(0,1)"`` or ``"group 3"``.
    tool:
        Which analyzer produced the finding.
    """

    code: str
    message: str
    severity: str = SEVERITY_ERROR
    file: Optional[str] = None
    line: Optional[int] = None
    anchor: Optional[str] = None
    tool: str = "check"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def location(self) -> str:
        """The anchor rendered for humans (``path:line`` or object id)."""
        if self.file is not None:
            return f"{self.file}:{self.line}" if self.line else self.file
        if self.anchor is not None:
            return self.anchor
        return "<global>"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (null anchors omitted)."""
        data: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "tool": self.tool,
        }
        if self.file is not None:
            data["file"] = self.file
            if self.line is not None:
                data["line"] = self.line
        if self.anchor is not None:
            data["anchor"] = self.anchor
        return data


@dataclass
class CheckReport:
    """The aggregate result of one ``repro check`` run."""

    findings: List[Finding] = field(default_factory=list)
    #: analyzer names that actually ran (for the summary line)
    tools: List[str] = field(default_factory=list)
    #: files/objects inspected, per tool (diagnostic context)
    inspected: Dict[str, int] = field(default_factory=dict)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def exit_code(self) -> int:
        """Nonzero when any finding exists (the CI gate contract)."""
        return 1 if self.findings else 0


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic report order: severity, then file/anchor, then line."""
    return sorted(
        findings,
        key=lambda f: (
            SEVERITIES.index(f.severity),
            f.file or "",
            f.line or 0,
            f.anchor or "",
            f.code,
            f.message,
        ),
    )


def render_text(report: CheckReport) -> str:
    """Human-readable rendering, one finding per line plus a summary."""
    lines = []
    for finding in sort_findings(report.findings):
        lines.append(
            f"{finding.location()}: {finding.severity}: "
            f"{finding.code} {finding.message} [{finding.tool}]"
        )
    n_err = len(report.errors)
    n_warn = len(report.findings) - n_err
    ran = ", ".join(report.tools) or "nothing"
    lines.append(
        f"repro check: {n_err} error(s), {n_warn} warning(s) ({ran})"
    )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Machine-readable rendering (stable key order, sorted findings)."""
    payload = {
        "tool": "repro.check",
        "version": REPORT_VERSION,
        "tools": list(report.tools),
        "inspected": dict(sorted(report.inspected.items())),
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.findings) - len(report.errors),
        },
        "findings": [f.to_dict() for f in sort_findings(report.findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
