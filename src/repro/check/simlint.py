"""simlint — AST determinism linter for the simulation codebase.

The reproduction's results are only meaningful if a run is a pure
function of its seed.  ``validate()`` guards the graph invariants at
runtime; simlint guards the *code* against the ways determinism is
usually lost in discrete-event simulators:

* reading the wall clock where virtual time is required,
* drawing randomness from the process-global RNG instead of an
  injected, seeded ``random.Random``,
* comparing simulated timestamps (floats accumulated through
  arithmetic) with ``==``/``!=``,
* mutable default arguments (state leaking across calls/instances),
* bare ``except`` (swallowing ``SimulationError`` and friends),
* iterating an unordered set/dict straight into an order-sensitive
  sink (heap pushes, event scheduling, packet sends) — iteration
  order is insertion-dependent, so replays diverge.

Rules live in a registry keyed by stable ``SL1xx`` codes; each has a
severity and a *scope*: ``"sim"`` rules apply only to the
simulation-critical packages (``repro.sim``, ``repro.core``), ``"all"``
rules to every module under ``repro``.

Suppressions
------------
A violation is suppressed by a trailing comment on the flagged line or
on a comment-only line directly above it::

    t = perf_counter()  # simlint: disable=SL101  -- profiling only

``disable=all`` silences every rule for that line.  A whole module opts
out of one rule with ``# simlint: disable-file=SL103`` on any line.
Suppressions are deliberate, visible decisions — the rule catalog in
``docs/STATIC_ANALYSIS.md`` asks each one to carry a justification.
"""

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.check.findings import SEVERITY_ERROR, Finding

TOOL = "simlint"

#: dotted module prefixes in which the "sim"-scoped rules apply.  The
#: bench/profiler modules opt in even though they live under repro.obs:
#: they run inside the measured hot path, so a stray wall-clock read or
#: global-RNG draw there is exactly as determinism-hostile as one in the
#: kernel.  Their single sanctioned clock read is the profiler's
#: ``read_wall_clock`` shim (suppressed inline with a justification).
SIM_SCOPED_PREFIXES = (
    "repro.sim",
    "repro.core",
    "repro.runtime",
    "repro.obs.profiler",
    "repro.obs.bench",
    # The live telemetry plane consumes the trace stream in-path; its
    # alert feeds are byte-compared across fixed-seed runs, so it must
    # be a pure function of the record stream (virtual time only).
    "repro.obs.live",
)

#: dotted module prefixes in which the "async"-scoped rules (the
#: SL110-SL114 concurrency family, registered by
#: :mod:`repro.check.asynclint`) apply — the packages that actually run
#: coroutines on an event loop.
ASYNC_SCOPED_PREFIXES = ("repro.runtime",)

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*simlint:\s*disable-file=([A-Za-z0-9_,\s]+)")

#: wall-clock reads: imported module -> functions that read real time
WALL_CLOCK_CALLS = {
    "time": {"time", "monotonic", "perf_counter", "process_time", "time_ns",
             "monotonic_ns", "perf_counter_ns"},
    "datetime.datetime": {"now", "utcnow", "today"},
    "datetime.date": {"today"},
}

#: functions on the ``random`` module that draw from the global RNG
#: (constructing a ``random.Random``/``SystemRandom`` instance is the
#: sanctioned pattern and is not flagged)
GLOBAL_RANDOM_EXEMPT = {"Random", "SystemRandom", "seed"}

#: identifiers that look like simulated timestamps (absolute virtual
#: times); durations like ``delay`` are deliberately excluded — exact
#: equality of configured constants is meaningful, accumulated clock
#: readings are not
TIMESTAMP_NAME_RE = re.compile(
    r"(?:^|_)(now|time|until|arrival|deadline|publish_time|delivery_time)$"
)

#: call targets whose argument order is observable in simulation results
ORDER_SENSITIVE_SINKS = {
    "heappush", "heappush_max", "schedule", "schedule_at", "send",
    "publish", "transmit", "_transmit", "appendleft",
}

#: iterable producers with no deterministic order guarantee.  Dict views
#: (``.keys()``/``.values()``/``.items()``) are insertion-ordered and so
#: reproducible under a fixed seed; set constructors and set operations
#: are not, and stay flagged unless laundered through ``sorted(...)``.
UNORDERED_PRODUCERS = {"set", "frozenset"}
UNORDERED_METHODS = {"intersection", "union", "difference",
                     "symmetric_difference"}


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    code: str
    name: str
    severity: str
    scope: str  # "sim" | "async" | "all"
    summary: str
    checker: Callable[["ModuleContext"], Iterator[Finding]]


RULES: Dict[str, Rule] = {}


def rule(
    code: str, name: str, summary: str, scope: str = "all",
    severity: str = SEVERITY_ERROR,
) -> Callable:
    """Class/function decorator registering a checker under ``code``."""
    if scope not in ("sim", "async", "all"):
        raise ValueError(f"unknown rule scope {scope!r}")

    def register(checker: Callable[["ModuleContext"], Iterator[Finding]]):
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code, name, severity, scope, summary, checker)
        return checker

    return register


class ModuleContext:
    """Everything a rule needs about one parsed module."""

    def __init__(self, path: Path, rel: str, module: str, source: str):
        self.path = path
        self.rel = rel  # repo-relative path used in findings
        self.module = module  # dotted module name, e.g. "repro.sim.events"
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.is_sim_scoped = module.startswith(SIM_SCOPED_PREFIXES)
        self.is_async_scoped = module.startswith(ASYNC_SCOPED_PREFIXES)
        #: local alias -> imported module ("import random as _r" -> {_r: random})
        self.module_aliases: Dict[str, str] = {}
        #: local name -> "module.attr" ("from time import time" -> {time: time.time})
        self.imported_names: Dict[str, str] = {}
        self._collect_imports()
        self.file_disabled = self._collect_file_suppressions()

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.imported_names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def _collect_file_suppressions(self) -> Set[str]:
        disabled: Set[str] = set()
        for line in self.lines:
            match = _SUPPRESS_FILE_RE.search(line)
            if match:
                disabled.update(
                    code.strip().upper() for code in match.group(1).split(",")
                )
        return disabled

    def _line_suppressions(self, lineno: int) -> Set[str]:
        codes: Set[str] = set()
        for candidate in (lineno, lineno - 1):
            if not 1 <= candidate <= len(self.lines):
                continue
            text = self.lines[candidate - 1]
            if candidate != lineno and text.strip() and not text.lstrip().startswith("#"):
                continue  # the line above only counts if it is a pure comment
            match = _SUPPRESS_RE.search(text)
            if match:
                codes.update(c.strip().upper() for c in match.group(1).split(","))
        return codes

    def suppressed(self, code: str, lineno: int) -> bool:
        if code in self.file_disabled or "ALL" in self.file_disabled:
            return True
        line_codes = self._line_suppressions(lineno)
        return code in line_codes or "ALL" in line_codes

    # -- resolution helpers used by several rules -----------------------

    def call_target(self, call: ast.Call) -> Optional[str]:
        """Resolve a call's dotted target through import aliases.

        ``_random.Random(...)`` with ``import random as _random`` resolves
        to ``random.Random``; ``perf_counter()`` after ``from time import
        perf_counter`` resolves to ``time.perf_counter``.  Returns ``None``
        for calls that cannot be resolved statically (methods on objects).
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self.imported_names.get(func.id, func.id)
        if isinstance(func, ast.Attribute):
            parts: List[str] = [func.attr]
            value = func.value
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name):
                base = value.id
                resolved = self.module_aliases.get(base) or self.imported_names.get(base)
                parts.append(resolved if resolved else base)
                return ".".join(reversed(parts))
        return None

    def finding(self, rule_: Rule, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=rule_.code,
            message=message,
            severity=rule_.severity,
            file=self.rel,
            line=getattr(node, "lineno", None),
            tool=TOOL,
        )


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@rule(
    "SL101", "wall-clock-read",
    "wall-clock read in a simulation-scoped module", scope="sim",
)
def check_wall_clock(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``time.time()``-style calls: virtual time must come from the
    :class:`~repro.sim.events.Simulator`, never the host clock."""
    rule_ = RULES["SL101"]
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.call_target(node)
        if target is None or "." not in target:
            continue
        module, _, attr = target.rpartition(".")
        if attr in WALL_CLOCK_CALLS.get(module, ()):
            yield ctx.finding(
                rule_, node,
                f"wall-clock read `{target}()`; simulation code must take "
                "time from the Simulator's virtual clock",
            )


@rule(
    "SL102", "global-random",
    "module-level random.* call bypasses the injected seeded RNG", scope="sim",
)
def check_global_random(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``random.choice(...)`` etc.: all randomness must flow through
    an injected ``random.Random`` so a seed reproduces the run."""
    rule_ = RULES["SL102"]
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.call_target(node)
        if target is None:
            continue
        module, _, attr = target.rpartition(".")
        if module == "random" and attr not in GLOBAL_RANDOM_EXEMPT:
            yield ctx.finding(
                rule_, node,
                f"`{target}()` draws from the process-global RNG; route "
                "randomness through an injected seeded random.Random",
            )


def _is_timestamp_expr(node: ast.AST) -> bool:
    """Whether an expression's terminal identifier names a virtual time."""
    if isinstance(node, ast.Attribute):
        return bool(TIMESTAMP_NAME_RE.search(node.attr))
    if isinstance(node, ast.Name):
        return bool(TIMESTAMP_NAME_RE.search(node.id))
    return False


def _eq_exempt_operand(node: ast.AST) -> bool:
    """Operands whose equality comparison with a timestamp is not a float
    hazard: string/None constants (kind tags, sentinels) and plain integer
    zero (the canonical 'never set' initial value)."""
    if not isinstance(node, ast.Constant):
        return False
    value = node.value
    if value is None or isinstance(value, str):
        return True
    return isinstance(value, int) and not isinstance(value, bool) and value == 0


@rule(
    "SL103", "float-time-equality",
    "==/!= comparison on simulated timestamps", scope="sim",
)
def check_time_equality(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``==``/``!=`` where an operand looks like a virtual timestamp.

    Simulated times are floats accumulated through arithmetic; exact
    equality silently turns into 'never' after a delay model change.
    Order comparisons (``<``, ``>=``) are the supported idiom.
    """
    rule_ = RULES["SL103"]
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            temporal = _is_timestamp_expr(left) or _is_timestamp_expr(right)
            if not temporal:
                continue
            if _eq_exempt_operand(left) or _eq_exempt_operand(right):
                continue
            yield ctx.finding(
                rule_, node,
                "simulated timestamps are accumulated floats; compare with "
                "ordering (<, >=) or an explicit tolerance, not ==/!=",
            )
            break  # one finding per comparison chain


@rule(
    "SL104", "mutable-default",
    "mutable default argument", scope="all",
)
def check_mutable_default(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag list/dict/set literals (or constructor calls) as defaults —
    shared across calls, they leak state between simulation runs."""
    rule_ = RULES["SL104"]
    mutable_calls = {"list", "dict", "set", "defaultdict", "deque", "bytearray"}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                       ast.DictComp, ast.SetComp))
            if isinstance(default, ast.Call):
                target = ctx.call_target(default)
                bad = bad or (target in mutable_calls)
            if bad:
                yield ctx.finding(
                    rule_, default,
                    f"mutable default argument in `{node.name}()`; default "
                    "to None and construct inside the function",
                )


@rule(
    "SL105", "bare-except",
    "bare `except:` swallows simulator errors", scope="all",
)
def check_bare_except(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``except:`` with no exception type — it hides
    ``SimulationError``/``GraphInvariantError`` and corrupts runs silently."""
    rule_ = RULES["SL105"]
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield ctx.finding(
                rule_, node,
                "bare `except:` catches SimulationError and "
                "KeyboardInterrupt alike; name the exceptions expected here",
            )


def _unordered_iterable(ctx: ModuleContext, node: ast.AST) -> Optional[str]:
    """Describe why ``node`` iterates in no guaranteed order, or None.

    ``sorted(...)`` (and other ordering wrappers applied to the whole
    iterable) launder the order.  Dict views are insertion-ordered in
    modern Python but that order is *history-dependent*, which is exactly
    what makes replays fragile, so ``.keys()/.values()/.items()`` on
    names that look set-like stay exempt while set constructors and set
    operations are flagged.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(node, ast.Call):
        target = ctx.call_target(node)
        if target in UNORDERED_PRODUCERS:
            return f"`{target}(...)`"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in UNORDERED_METHODS
        ):
            return f"a set `.{node.func.attr}()` result"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd, ast.BitOr,
                                                            ast.BitXor, ast.Sub)):
        # ``members_a & members_b`` — set algebra on membership sets is
        # the common producer in this codebase.
        if any(_set_algebra_operand(side) for side in (node.left, node.right)):
            return "a set-algebra expression"
    return None


def _set_algebra_operand(node: ast.AST) -> bool:
    """Heuristic: operand names that conventionally hold sets here."""
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    return name is not None and bool(
        re.search(r"(members|_set|seen|retired|ids)$", name)
    )


def _contains_sink(body: Sequence[ast.stmt]) -> Optional[Tuple[ast.Call, str]]:
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in ORDER_SENSITIVE_SINKS:
                return node, name
    return None


@rule(
    "SL106", "unordered-into-sink",
    "unordered iteration feeds an order-sensitive sink", scope="sim",
)
def check_unordered_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``for x in {set}`` loops whose body schedules events, pushes
    heap entries, or sends packets — wrap the iterable in ``sorted()``."""
    rule_ = RULES["SL106"]
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        reason = _unordered_iterable(ctx, node.iter)
        if reason is None:
            continue
        sink = _contains_sink(node.body)
        if sink is None:
            continue
        yield ctx.finding(
            rule_, node,
            f"iterating {reason} into order-sensitive `{sink[1]}(...)`; "
            "wrap the iterable in sorted() to pin the order",
        )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    rel: str = "<string>",
    module: str = "repro.core.inline",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one module's source text (testing/entry-point convenience)."""
    try:
        ctx = ModuleContext(Path(rel), rel, module, source)
    except SyntaxError as exc:
        return [
            Finding(
                code="SL100",
                message=f"syntax error: {exc.msg}",
                file=rel,
                line=exc.lineno,
                tool=TOOL,
            )
        ]
    findings: List[Finding] = []
    for code in sorted(select or RULES):
        rule_ = RULES[code]
        if rule_.scope == "sim" and not ctx.is_sim_scoped:
            continue
        if rule_.scope == "async" and not ctx.is_async_scoped:
            continue
        for finding in rule_.checker(ctx):
            if finding.line is not None and ctx.suppressed(rule_.code, finding.line):
                continue
            findings.append(finding)
    return findings


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the package root's parent."""
    rel = path.relative_to(root.parent)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def lint_path(
    root: Path, select: Optional[Sequence[str]] = None
) -> Tuple[List[Finding], int]:
    """Lint every ``*.py`` under ``root`` (a package directory or file).

    Returns the findings plus the number of files inspected.  ``root``
    should be the ``repro`` package directory so module names (and with
    them the sim-scoped rule set) resolve correctly.
    """
    root = Path(root)
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    findings: List[Finding] = []
    package_root = root if root.is_dir() else root.parent
    for path in files:
        source = path.read_text(encoding="utf-8")
        module = module_name_for(path, package_root)
        rel = str(path.relative_to(package_root.parent))
        findings.extend(lint_source(source, rel=rel, module=module, select=select))
    return findings, len(files)


# The asyncio-concurrency rule family (SL110-SL114) lives in its own
# module but registers into this registry; importing it here keeps
# `import repro.check.simlint` sufficient to know every rule.  The import
# sits at the tail because asynclint needs the names defined above.
from repro.check import asynclint as _asynclint  # noqa: E402,F401
