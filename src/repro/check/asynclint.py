"""async-lint — concurrency rules for the asyncio runtime (SL110-SL114).

The simulated backend is single-threaded and deterministic by
construction; the asyncio backend re-introduces real concurrency, and
with it a family of bugs simlint's determinism rules cannot see:
coroutines that are created but never retired, state mutated across
suspension points, wall-clock-coupled sleeps, and event-loop plumbing
leaking out of the one module allowed to own it.

These rules register into :mod:`repro.check.simlint`'s registry under
scope ``"async"``, which confines them to ``repro.runtime`` (see
``ASYNC_SCOPED_PREFIXES``).  They reuse simlint's module context, alias
resolution, and suppression machinery, but report under their own tool
name so merged ``repro check`` reports attribute findings correctly.

Rules
-----
SL110  fire-and-forget task: ``create_task``/``ensure_future`` whose
       result is discarded — the task is unreferenced (may be GC'd
       mid-flight) and its exceptions vanish.
SL111  shared attribute mutated across an ``await``: ``self.x`` read,
       the coroutine suspends, then ``self.x`` is written from a
       computed value — a lost-update window for any interleaved task.
       Stores of plain constants (flag flips like ``self._running =
       False``) are exempt: they carry no stale read.
SL112  ``asyncio.sleep`` with a wall-clock-derived argument — couples
       backoff/poll cadence to the host clock; derive delays from
       virtual time and ``time_scale`` instead.
SL113  module spawns tasks but never cancels or awaits any: no
       ``.cancel()``, ``wait_for``, ``gather``, ``wait``, ``shield``,
       or bare ``await`` of the stored handle means shutdown leaks
       pending tasks (and their "Task was destroyed" warnings).
SL114  event-loop access (``get_event_loop``/``call_later``/...)
       outside :mod:`repro.runtime.asyncio_backend` — the transport is
       the single sanctioned owner of loop plumbing; everything else
       must go through the backend's scheduler surface.
"""

import ast
from typing import Iterator, List, Optional, Set, Tuple, Union

from repro.check.findings import Finding
from repro.check.simlint import (
    RULES,
    ModuleContext,
    Rule,
    WALL_CLOCK_CALLS,
    rule,
)

TOOL = "async-lint"

#: the SL11x rule codes, for select= filters and the runner
ASYNC_RULE_CODES = ("SL110", "SL111", "SL112", "SL113", "SL114")

#: call targets that spawn a task from a coroutine
TASK_SPAWNERS = {"create_task", "ensure_future"}

#: names that count as retiring/handling a spawned task (SL113)
TASK_RETIRERS = {"cancel", "wait_for", "gather", "wait", "shield"}

#: the one module allowed to talk to the event loop directly (SL114)
LOOP_OWNER_MODULE = "repro.runtime.asyncio_backend"

#: asyncio module functions that fetch or build an event loop
LOOP_ACCESSORS = {
    "asyncio.get_event_loop",
    "asyncio.get_running_loop",
    "asyncio.new_event_loop",
    "asyncio.set_event_loop",
}

#: loop-object methods that schedule work behind the runtime's back
LOOP_METHODS = {
    "call_soon",
    "call_soon_threadsafe",
    "call_later",
    "call_at",
    "run_until_complete",
    "run_forever",
}


def _finding(
    ctx: ModuleContext, rule_: Rule, node: ast.AST, message: str
) -> Finding:
    """Like ``ctx.finding`` but attributed to the async-lint tool."""
    return Finding(
        code=rule_.code,
        message=message,
        severity=rule_.severity,
        file=ctx.rel,
        line=getattr(node, "lineno", None),
        tool=TOOL,
    )


def _spawner_name(ctx: ModuleContext, call: ast.Call) -> Optional[str]:
    """The spawn function name when ``call`` creates a task, else None.

    Matches both the module functions (``asyncio.create_task``,
    ``asyncio.ensure_future``) and loop methods (``loop.create_task``).
    """
    target = ctx.call_target(call)
    if target is not None:
        tail = target.rpartition(".")[2]
        if tail in TASK_SPAWNERS:
            return tail
    if isinstance(call.func, ast.Attribute) and call.func.attr in TASK_SPAWNERS:
        return call.func.attr
    return None


@rule(
    "SL110", "fire-and-forget-task",
    "task created but its handle discarded", scope="async",
)
def check_unawaited_task(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag statement-level ``create_task(...)``/``ensure_future(...)``.

    A task whose handle is dropped is only weakly referenced by the
    loop: the garbage collector may reap it mid-flight, and any
    exception it raises is reported (at best) at interpreter exit.
    """
    rule_ = RULES["SL110"]
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Expr):
            continue
        call = node.value
        if not isinstance(call, ast.Call):
            continue
        spawner = _spawner_name(ctx, call)
        if spawner is not None:
            yield _finding(
                ctx, rule_, node,
                f"`{spawner}(...)` result discarded; store the task handle "
                "so it can be awaited or cancelled (and is not GC'd "
                "mid-flight)",
            )


_AWAIT_NODES = (ast.Await, ast.AsyncFor, ast.AsyncWith)
_POS = Tuple[int, int]


def _iter_own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@rule(
    "SL111", "mutation-across-await",
    "shared attribute read, then written after an await", scope="async",
)
def check_mutation_across_await(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag read-suspend-write windows on ``self`` attributes.

    Within one coroutine, ``self.x`` is loaded, the coroutine suspends
    at an ``await`` (any interleaved task may now run), and ``self.x``
    is then stored from a computed value — the classic cooperative-
    concurrency lost update.  Constant stores are exempt: a flag flip
    cannot carry a stale read.
    """
    rule_ = RULES["SL111"]
    for func in ast.walk(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        awaits: List[_POS] = []
        loads: List[Tuple[str, _POS]] = []
        stores: List[Tuple[str, _POS, ast.AST, ast.AST]] = []
        for node in _iter_own_nodes(func):
            if isinstance(node, _AWAIT_NODES):
                awaits.append((node.lineno, node.col_offset))
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = getattr(node, "value", None)
                if value is None:
                    continue
                targets: List[ast.AST]
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                else:
                    targets = [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        pos = (target.lineno, target.col_offset)
                        stores.append((attr, pos, value, node))
            attr = _self_attr(node)
            if attr is not None and isinstance(node.ctx, ast.Load):
                loads.append((attr, (node.lineno, node.col_offset)))
        for attr, store_pos, value, stmt in stores:
            if isinstance(value, ast.Constant):
                continue
            racy = any(
                load_attr == attr
                and load_pos < store_pos
                and any(load_pos < a < store_pos for a in awaits)
                for load_attr, load_pos in loads
            )
            if racy:
                yield _finding(
                    ctx, rule_, stmt,
                    f"`self.{attr}` is read before an await and written "
                    "after it; any task interleaved at the suspension "
                    "point races this update — re-read after the await "
                    "or restructure to avoid the window",
                )


def _contains_wall_clock_call(ctx: ModuleContext, node: ast.AST) -> Optional[str]:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        target = ctx.call_target(sub)
        if target is None or "." not in target:
            continue
        module, _, attr = target.rpartition(".")
        if attr in WALL_CLOCK_CALLS.get(module, ()):
            return target
    return None


@rule(
    "SL112", "wall-clock-sleep",
    "asyncio.sleep derives its delay from the wall clock", scope="async",
)
def check_wall_clock_sleep(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``asyncio.sleep(f(time.time()))``-style calls.

    Sleeping until a host-clock deadline couples the runtime's cadence
    to real time; delays must derive from virtual time and the
    backend's ``time_scale`` so scaled runs stay faithful.
    """
    rule_ = RULES["SL112"]
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.call_target(node)
        if target != "asyncio.sleep":
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            clock = _contains_wall_clock_call(ctx, arg)
            if clock is not None:
                yield _finding(
                    ctx, rule_, node,
                    f"`asyncio.sleep` argument derives from `{clock}()`; "
                    "compute delays from virtual time and time_scale, "
                    "not the host clock",
                )
                break


@rule(
    "SL113", "task-leak",
    "tasks spawned but never cancelled or awaited", scope="async",
)
def check_task_cancellation(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag modules that spawn tasks with no retirement path at all.

    A module that calls ``create_task``/``ensure_future`` must somewhere
    cancel, await, gather, or wait for tasks; otherwise shutdown leaks
    them.  This is a module-level heuristic (one finding, anchored at
    the first spawn) rather than a per-task data-flow analysis.
    """
    rule_ = RULES["SL113"]
    first_spawn: Optional[ast.Call] = None
    retired = False
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Await) and not isinstance(node.value, ast.Call):
            # Awaiting a stored handle (`await self._task`) retires it;
            # awaiting a fresh call (`await asyncio.sleep(...)`) does not.
            retired = True
        if not isinstance(node, ast.Call):
            continue
        if first_spawn is None and _spawner_name(ctx, node) is not None:
            first_spawn = node
        target = ctx.call_target(node)
        tail = target.rpartition(".")[2] if target else None
        if tail in TASK_RETIRERS:
            retired = True
        elif isinstance(node.func, ast.Attribute) and node.func.attr in TASK_RETIRERS:
            retired = True
    if first_spawn is not None and not retired:
        yield _finding(
            ctx, rule_, first_spawn,
            "this module spawns tasks but never cancels, awaits, or "
            "gathers any; give every spawned task a shutdown path",
        )


@rule(
    "SL114", "loop-access-outside-transport",
    "event-loop plumbing outside the asyncio transport", scope="async",
)
def check_loop_access(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag event-loop access anywhere but the backend module itself.

    ``repro.runtime.asyncio_backend`` owns the loop; other runtime
    modules scheduling callbacks or fetching loops directly bypass the
    transport's quiescence tracking and time scaling.
    """
    rule_ = RULES["SL114"]
    if ctx.module == LOOP_OWNER_MODULE:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.call_target(node)
        if target in LOOP_ACCESSORS:
            yield _finding(
                ctx, rule_, node,
                f"`{target}(...)` outside {LOOP_OWNER_MODULE}; route loop "
                "access through the transport's scheduler surface",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in LOOP_METHODS
        ):
            yield _finding(
                ctx, rule_, node,
                f"loop method `.{node.func.attr}(...)` outside "
                f"{LOOP_OWNER_MODULE}; schedule work through the "
                "transport instead",
            )
