"""Static analysis for the reproduction: determinism linting and
sequencing-graph invariant verification.

Two analyzers share one finding model and one entry point:

* :mod:`repro.check.simlint` — AST rules (``SL1xx``) enforcing
  simulation purity: no wall-clock reads, no global-RNG draws, no float
  timestamp equality, no mutable defaults, no bare ``except``, no
  unordered iteration into order-sensitive sinks.
* :mod:`repro.check.graph_verify` — independent re-proof (``GV2xx``) of
  the paper's C1 (single path per group) and C2 (loop-free) invariants,
  plus ingress uniqueness, membership consistency, and placement
  co-location consistency, from a live graph or an exported JSON
  certificate.

Three further analyzers audit *behaviour* rather than code or graphs:

* :mod:`repro.check.invariants` — re-checks a finished simulation's
  delivery logs (``RT3xx``): per-group total order, exactly-once,
  quiescence, publisher FIFO, mutual consistency, causal order, and
  stability.  Used by the fault-injection campaigns in
  :mod:`repro.faults` and the ``repro chaos`` CLI.
* :mod:`repro.check.churn` — cross-epoch invariants (``RT32x``) for
  online epoch-fenced reconfiguration: counter continuity over the
  fence, exactly-once across epochs, fence completeness, joiner clean
  prefixes, and leaver drains.  Used by ``repro chaos --churn``.
* :mod:`repro.check.explore` — a schedule-space model checker
  (``MC4xx``): drives the protocol over a controller-chosen delivery
  order (:mod:`repro.runtime.explore_backend`) and enumerates every
  reduced interleaving of a small configuration, checking safety
  invariants at each terminal state.  Run with ``repro explore`` or
  ``repro check --explore``.
* :mod:`repro.check.asynclint` — asyncio-concurrency lint rules
  (``SL110``-``SL114``) scoped to ``repro.runtime``.  Run with
  ``repro check --async-lint``.

Run the static analyzers with ``repro check`` (see
:mod:`repro.check.runner`); the rule catalog lives in
``docs/STATIC_ANALYSIS.md`` and the runtime invariants in
``docs/FAULTS.md``.
"""

from repro.check.churn import EpochLog, collect_epoch_log, verify_churn
from repro.check.findings import (
    CheckReport,
    Finding,
    render_json,
    render_text,
    sort_findings,
)
from repro.check.graph_verify import (
    CERTIFICATE_FORMAT,
    load_certificate,
    verify_certificate,
    verify_graph,
)
from repro.check.explore import (
    ExploreConfig,
    ExploreResult,
    explore,
    replay_schedule,
    run_explore_check,
)
from repro.check.invariants import (
    DeliveredEntry,
    PublishedEntry,
    RunView,
    as_run_view,
    fabric_view,
    verify_run,
)
from repro.check.runner import run_check
from repro.check.simlint import RULES, lint_path, lint_source

__all__ = [
    "CERTIFICATE_FORMAT",
    "CheckReport",
    "DeliveredEntry",
    "EpochLog",
    "ExploreConfig",
    "ExploreResult",
    "Finding",
    "PublishedEntry",
    "RULES",
    "RunView",
    "as_run_view",
    "collect_epoch_log",
    "explore",
    "fabric_view",
    "lint_path",
    "lint_source",
    "load_certificate",
    "render_json",
    "render_text",
    "replay_schedule",
    "run_check",
    "run_explore_check",
    "sort_findings",
    "verify_certificate",
    "verify_churn",
    "verify_graph",
    "verify_run",
]
