"""Static analysis for the reproduction: determinism linting and
sequencing-graph invariant verification.

Two analyzers share one finding model and one entry point:

* :mod:`repro.check.simlint` — AST rules (``SL1xx``) enforcing
  simulation purity: no wall-clock reads, no global-RNG draws, no float
  timestamp equality, no mutable defaults, no bare ``except``, no
  unordered iteration into order-sensitive sinks.
* :mod:`repro.check.graph_verify` — independent re-proof (``GV2xx``) of
  the paper's C1 (single path per group) and C2 (loop-free) invariants,
  plus ingress uniqueness, membership consistency, and placement
  co-location consistency, from a live graph or an exported JSON
  certificate.

Run both with ``repro check`` (see :mod:`repro.check.runner`); the rule
catalog lives in ``docs/STATIC_ANALYSIS.md``.
"""

from repro.check.findings import (
    CheckReport,
    Finding,
    render_json,
    render_text,
    sort_findings,
)
from repro.check.graph_verify import (
    CERTIFICATE_FORMAT,
    load_certificate,
    verify_certificate,
    verify_graph,
)
from repro.check.runner import run_check
from repro.check.simlint import RULES, lint_path, lint_source

__all__ = [
    "CERTIFICATE_FORMAT",
    "CheckReport",
    "Finding",
    "RULES",
    "lint_path",
    "lint_source",
    "load_certificate",
    "render_json",
    "render_text",
    "run_check",
    "sort_findings",
    "verify_certificate",
    "verify_graph",
]
