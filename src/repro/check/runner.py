"""Orchestration for ``repro check``: every analyzer in one run.

Up to five analysis sources feed one
:class:`~repro.check.findings.CheckReport`, merged under a single
schema version:

1. **simlint** over the installed ``repro`` package sources (or explicit
   paths),
2. **graph self-verification** — a sweep of seeded Zipf workloads whose
   sequencing graphs and placements are built the production way, then
   audited by :mod:`repro.check.graph_verify` (including one dynamic
   add/remove episode per scenario, since reconfiguration is where
   invariants historically break),
3. **certificate verification** for exported JSON certificates,
4. **model checking** (``--explore``) — budgeted schedule-space smoke
   scenarios through :mod:`repro.check.explore`,
5. **async-lint** (``--async-lint``) — the SL110-SL114 concurrency
   rules over ``repro.runtime``.

Each analyzer runs under a crash guard: an analyzer that *raises* (as
opposed to reporting findings) contributes a ``CK000`` tool-crash
finding instead of aborting the run, so ``--format json`` always emits
a complete report for CI to parse.  The exit code is the CI contract:
0 iff no findings.
"""

import random
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import IO, List, Optional, Sequence, Tuple

import repro
from repro.check import graph_verify, simlint
from repro.check.findings import CheckReport, Finding, render_json, render_text


@dataclass(frozen=True)
class GraphScenario:
    """One self-verification workload shape."""

    hosts: int
    groups: int
    seed: int
    #: run a remove+add reconfiguration episode before the final audit
    dynamic: bool = True


#: Default sweep: small dense, mid-size, and a larger sparse workload,
#: each at two seeds.  Cheap (< a second) but covers single-chain,
#: multi-cluster, and ingress-only-heavy graph shapes.
DEFAULT_SCENARIOS: Tuple[GraphScenario, ...] = (
    GraphScenario(hosts=16, groups=6, seed=0),
    GraphScenario(hosts=16, groups=6, seed=7),
    GraphScenario(hosts=48, groups=12, seed=1),
    GraphScenario(hosts=48, groups=12, seed=11),
    GraphScenario(hosts=96, groups=8, seed=3),
    GraphScenario(hosts=96, groups=24, seed=5),
)


def default_lint_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(repro.__file__).resolve().parent


def run_simlint(
    paths: Optional[Sequence[str]] = None,
    select: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Lint the given paths (default: the whole ``repro`` package)."""
    roots = [Path(p) for p in paths] if paths else [default_lint_root()]
    findings: List[Finding] = []
    inspected = 0
    for root in roots:
        if not root.exists():
            findings.append(
                Finding(
                    code="SL100",
                    message=f"lint path does not exist: {root}",
                    file=str(root),
                    tool=simlint.TOOL,
                )
            )
            continue
        batch, count = simlint.lint_path(root, select=select)
        findings.extend(batch)
        inspected += count
    return findings, inspected


def run_graph_self_verification(
    scenarios: Sequence[GraphScenario] = DEFAULT_SCENARIOS,
) -> Tuple[List[Finding], int]:
    """Build seeded workload graphs the production way and audit them."""
    # Imported here so `repro check --no-graph` (and the simlint unit
    # tests) never pay for the topology/scipy stack.
    from repro.core.placement import place
    from repro.core.sequencing_graph import SequencingGraph
    from repro.topology.clusters import attach_hosts
    from repro.topology.gtitm import TransitStubParams, generate_transit_stub
    from repro.topology.routing import RoutingTable
    from repro.workloads.zipf import zipf_membership

    findings: List[Finding] = []
    checked = 0
    for scenario in scenarios:
        rng = random.Random(scenario.seed)
        snapshot = zipf_membership(scenario.hosts, scenario.groups, rng=rng)
        graph = SequencingGraph.build(snapshot, rng=random.Random(scenario.seed))

        topology = generate_transit_stub(
            TransitStubParams.small(), seed=scenario.seed
        )
        routing = RoutingTable(topology)
        hosts = attach_hosts(
            topology, scenario.hosts, rng=random.Random(scenario.seed)
        )
        host_router = {h.host_id: h.router for h in hosts}
        placement = place(
            graph, host_router, topology, routing,
            rng=random.Random(scenario.seed),
        )
        label = (
            f"zipf(hosts={scenario.hosts}, groups={scenario.groups}, "
            f"seed={scenario.seed})"
        )
        findings.extend(
            _tag_scenario(graph_verify.verify_graph(graph, placement), label)
        )
        checked += 1

        if scenario.dynamic and len(snapshot) >= 2:
            # Exercise the incremental path: drop one group (lazily) and
            # add a fresh one overlapping two existing groups, then audit.
            groups = sorted(snapshot)
            victim = groups[len(groups) // 2]
            graph.remove_group(victim, lazy=True)
            donors = [g for g in groups if g != victim][:2]
            members = sorted(set().union(*(snapshot[g] for g in donors)))
            new_group = max(groups) + 1
            graph.add_group(new_group, members[: max(4, len(members) // 2)])
            findings.extend(
                _tag_scenario(
                    graph_verify.verify_graph(graph), f"{label} after churn"
                )
            )
            checked += 1
    return findings, checked


def _tag_scenario(findings: List[Finding], label: str) -> List[Finding]:
    return [
        Finding(
            code=f.code,
            message=f"{f.message} (in {label})",
            severity=f.severity,
            anchor=f.anchor,
            tool=f.tool,
        )
        for f in findings
    ]


def run_certificates(paths: Sequence[str]) -> Tuple[List[Finding], int]:
    """Verify exported certificate files."""
    findings: List[Finding] = []
    for path in paths:
        try:
            cert = graph_verify.load_certificate(path)
        except (OSError, ValueError) as exc:
            findings.append(
                Finding(
                    code="GV200",
                    message=f"cannot load certificate: {exc}",
                    file=str(path),
                    tool=graph_verify.TOOL,
                )
            )
            continue
        for finding in graph_verify.verify_certificate(cert):
            findings.append(
                Finding(
                    code=finding.code,
                    message=f"{finding.message} (certificate {path})",
                    severity=finding.severity,
                    anchor=finding.anchor,
                    tool=finding.tool,
                )
            )
    return findings, len(paths)


def run_async_lint(
    paths: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """The SL110-SL114 concurrency family over the asyncio runtime."""
    from repro.check import asynclint

    roots = paths if paths else [str(default_lint_root() / "runtime")]
    return run_simlint(roots, select=list(asynclint.ASYNC_RULE_CODES))


def run_explore_smoke() -> Tuple[List[Finding], int]:
    """Budgeted model-check scenarios (the ``--explore`` analyzer)."""
    # Imported lazily: the explorer pulls in the protocol/topology stack.
    from repro.check.explore import run_explore_check

    return run_explore_check()


def _crash_finding(tool: str, exc: BaseException) -> Finding:
    """An analyzer raised instead of reporting; fail loud, not silent."""
    return Finding(
        code="CK000",
        message=(
            f"analyzer crashed: {type(exc).__name__}: {exc} "
            "(findings from this tool are incomplete)"
        ),
        tool=tool,
    )


def _run_guarded(report: CheckReport, tool: str, key: str, runner) -> None:
    """Run one analyzer; on a raise, record CK000 but keep the report.

    ``--format json`` must emit a parseable report even when a rule
    module is broken — a crashed analyzer is itself a finding, and the
    other analyzers' findings still merge into the same report.
    """
    if tool not in report.tools:
        report.tools.append(tool)
    try:
        findings, inspected = runner()
    except Exception as exc:  # noqa: BLE001 - the guard is the point
        report.findings.append(_crash_finding(tool, exc))
        return
    report.extend(findings)
    report.inspected[key] = report.inspected.get(key, 0) + inspected


def run_check(
    paths: Optional[Sequence[str]] = None,
    certificates: Sequence[str] = (),
    lint: bool = True,
    graphs: bool = True,
    select: Optional[Sequence[str]] = None,
    fmt: str = "text",
    stream: Optional[IO[str]] = None,
    explore: bool = False,
    async_lint: bool = False,
) -> int:
    """Full ``repro check`` run; prints a report, returns the exit code."""
    if fmt not in ("text", "json"):
        raise ValueError(f"unknown format {fmt!r}")
    stream = stream if stream is not None else sys.stdout
    report = CheckReport()
    if lint:
        _run_guarded(
            report, simlint.TOOL, "files",
            lambda: run_simlint(paths, select=select),
        )
    if graphs:
        _run_guarded(
            report, graph_verify.TOOL, "graphs", run_graph_self_verification
        )
    if certificates:
        _run_guarded(
            report, graph_verify.TOOL, "certificates",
            lambda: run_certificates(certificates),
        )
    if explore:
        _run_guarded(report, "model-check", "schedules", run_explore_smoke)
    if async_lint:
        from repro.check import asynclint

        _run_guarded(
            report, asynclint.TOOL, "async_files",
            lambda: run_async_lint(paths),
        )
    renderer = render_json if fmt == "json" else render_text
    print(renderer(report), file=stream)
    return report.exit_code
