"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
environments without the ``wheel`` package (whose ``bdist_wheel`` command
PEP 660 editable installs require) can still do ``pip install -e .`` via
the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
