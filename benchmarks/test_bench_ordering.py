"""A9 — chain-ordering ablation (our main C1/C2 design choice).

The chain-per-cluster construction leaves the *order* of atoms on each
chain open.  DESIGN.md §4.1 claims the two-pass ordering (greedy group
affinity, then co-location-aware block reordering) is what keeps
pass-through overhead and machine hops low.  This ablation quantifies
each stage on the Figure 3 workload:

* ``none``      — atoms sorted by id (no affinity ordering),
* ``greedy``    — affinity ordering only,
* ``greedy+blocks`` — affinity ordering plus block reordering (the
  default pipeline via ``place``).

Correctness is identical across modes (asserted); the differences are
pure efficiency: pass-through hops and latency stretch.
"""

import random

from repro.core.placement import assign_machines, co_locate_atoms, place
from repro.core.protocol import OrderingFabric
from repro.core.sequencing_graph import SequencingGraph
from repro.experiments.common import format_table
from repro.metrics.stats import percentile
from repro.metrics.stretch import latency_stretch_by_destination
from repro.workloads.zipf import zipf_membership

N_GROUPS = 32


def run_ordering_ablation(env, seed=0):
    snapshot = zipf_membership(env.n_hosts, N_GROUPS, rng=random.Random(seed))
    host_router = env.host_router
    results = {}
    for mode in ("none", "greedy", "greedy+blocks"):
        optimize = "none" if mode == "none" else "greedy"
        graph = SequencingGraph.build(
            snapshot, rng=random.Random(seed), optimize=optimize
        )
        if mode == "greedy+blocks":
            placement = place(
                graph, host_router, env.topology, env.routing, rng=random.Random(seed)
            )
        else:
            nodes = co_locate_atoms(graph, rng=random.Random(seed))
            placement = assign_machines(
                nodes, graph, host_router, env.topology, env.routing,
                rng=random.Random(seed),
            )
        membership = env.membership_from(snapshot)
        fabric = OrderingFabric(
            membership,
            env.hosts,
            env.topology,
            env.routing,
            seed=seed,
            graph=graph,
            placement=placement,
            trace=False,
        )
        env.run_one_message_per_membership(fabric)
        assert fabric.pending_messages() == {}
        stretch = sorted(latency_stretch_by_destination(fabric).values())
        pass_through = sum(
            len(graph.pass_through_atoms(g)) for g in graph.groups()
        )
        results[mode] = {
            "pass_through_atoms": pass_through,
            "p50_stretch": percentile(stretch, 50),
            "p90_stretch": percentile(stretch, 90),
        }
    return results


def test_ordering_ablation(benchmark, env128, save_result):
    results = benchmark.pedantic(
        run_ordering_ablation, args=(env128,), rounds=1, iterations=1
    )
    table = format_table(
        ["ordering", "pass_through_atoms", "p50_stretch", "p90_stretch"],
        [
            (mode, row["pass_through_atoms"], row["p50_stretch"], row["p90_stretch"])
            for mode, row in results.items()
        ],
        title=f"A9: chain-ordering ablation, 128 hosts, {N_GROUPS} Zipf groups",
    )
    save_result("a9_ordering", table)
    benchmark.extra_info.update(
        {
            f"p50_stretch_{mode.replace('+', '_')}": round(row["p50_stretch"], 2)
            for mode, row in results.items()
        }
    )

    # Affinity ordering reduces pass-through overhead vs sorted order.
    assert (
        results["greedy"]["pass_through_atoms"]
        <= results["none"]["pass_through_atoms"]
    )
    # Latency is dominated by machine hops, not pass-through count:
    # affinity ordering *alone* scatters co-located atoms along the chain
    # and hurts stretch badly; the block reordering pass recovers it.
    assert (
        results["greedy+blocks"]["p50_stretch"]
        < 0.5 * results["greedy"]["p50_stretch"]
    )
    # With the full pipeline the tail beats the naive sorted order too.
    assert (
        results["greedy+blocks"]["p90_stretch"] < results["none"]["p90_stretch"]
    )
