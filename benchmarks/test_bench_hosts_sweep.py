"""A7 — host-population sweep (paper §4.1 varies hosts 32→128).

Shape asserted: with the group count fixed, growing the population keeps
the worst atoms-on-path ratio falling (the §4.4 "attractive whenever the
number of nodes exceeds the number of groups" regime) while node counts
stay modest.
"""

from conftest import bench_runs

from repro.experiments import hosts_sweep


def test_hosts_sweep(benchmark, save_result):
    runs = max(5, bench_runs() // 5)
    results = benchmark.pedantic(
        hosts_sweep.run_hosts_sweep, kwargs={"runs": runs}, rounds=1, iterations=1
    )
    table = hosts_sweep.render(results)
    save_result("a7_hosts_sweep", table)

    benchmark.extra_info.update(
        {
            f"worst_ratio_{n}hosts": round(results[n]["worst_atoms_ratio"], 3)
            for n in results
        }
    )
    # Per-message stamp overhead (relative to population) falls as hosts
    # grow past the fixed group count.
    assert results[128]["worst_atoms_ratio"] < results[32]["worst_atoms_ratio"]
    # The stamp ratio stays below the vector-timestamp break-even (0.5 of
    # the population would already be generous; the bound is groups/hosts).
    for n_hosts, row in results.items():
        assert row["worst_atoms_ratio"] <= 16 / n_hosts  # <= groups / hosts
    # Stretch stays in the same band across populations (no blow-up).
    stretches = [row["p50_stretch"] for row in results.values()]
    assert max(stretches) < 4 * min(stretches)
