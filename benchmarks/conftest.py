"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper figure (or an ablation) and

* asserts the paper's qualitative shape (who wins, where curves turn),
* writes the rendered table to ``benchmarks/results/<name>.txt``,
* attaches headline numbers to pytest-benchmark's ``extra_info``.

Set ``REPRO_PAPER_SCALE=1`` to run on the full 10,000-router topology and
``REPRO_BENCH_RUNS`` to override repetition counts (the paper uses 100
runs for Figures 5/6).
"""

import os
import pathlib

import pytest

from repro.experiments.common import ExperimentEnv

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def bench_runs(default: int = 30) -> int:
    """Repetitions for the statistical sweeps (paper: 100)."""
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


def paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "") == "1"


@pytest.fixture(scope="session")
def env128():
    """The paper's subscriber population over the shared topology."""
    return ExperimentEnv(n_hosts=128, seed=0, paper_scale=paper_scale())


@pytest.fixture(scope="session")
def save_result():
    """Writer for rendered figure tables (one .txt per benchmark)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
