"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper figure (or an ablation) and

* asserts the paper's qualitative shape (who wins, where curves turn),
* writes the rendered table to ``benchmarks/results/<name>.txt``,
* attaches headline numbers to pytest-benchmark's ``extra_info``.

Set ``REPRO_PAPER_SCALE=1`` to run on the full 10,000-router topology and
``REPRO_BENCH_RUNS`` to override repetition counts (the paper uses 100
runs for Figures 5/6).  Both knobs are recorded into every saved result
— a header line in the ``.txt`` table and ``extra_info`` keys in the
pytest-benchmark JSON — so two result files are never compared without
knowing the scale they ran at.
"""

import os
import pathlib

import pytest

from repro.experiments.common import ExperimentEnv

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def bench_runs(default: int = 30) -> int:
    """Repetitions for the statistical sweeps (paper: 100)."""
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


def paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "") == "1"


def _config_header() -> str:
    """One-line record of the environment knobs a result ran under."""
    return (
        f"# config: REPRO_BENCH_RUNS={bench_runs()} "
        f"REPRO_PAPER_SCALE={'1' if paper_scale() else '0'}"
    )


@pytest.fixture(autouse=True)
def record_bench_config(request):
    """Stamp the env knobs into pytest-benchmark's ``extra_info``.

    Applies only to tests that actually use the ``benchmark`` fixture;
    runs before the test body so the keys survive even when the
    benchmark itself fails its shape assertion.
    """
    if "benchmark" in request.fixturenames:
        benchmark = request.getfixturevalue("benchmark")
        benchmark.extra_info["repro_bench_runs"] = bench_runs()
        benchmark.extra_info["repro_paper_scale"] = paper_scale()
    yield


@pytest.fixture(scope="session")
def env128():
    """The paper's subscriber population over the shared topology."""
    return ExperimentEnv(n_hosts=128, seed=0, paper_scale=paper_scale())


@pytest.fixture(scope="session")
def save_result():
    """Writer for rendered figure tables (one .txt per benchmark).

    Every file starts with the config header naming the repetition count
    and scale it was produced under.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(
            _config_header() + "\n" + text + "\n"
        )

    return _save
