"""A8 — topology sensitivity: latency shapes on a flat Waxman underlay.

The paper evaluates on a transit–stub topology.  Re-running the Figure 3
workload on GT-ITM's *other* family (flat Waxman random graphs) checks
that the headline shapes — sub-linear stretch growth with group count,
close pairs paying the largest RDP — are properties of the protocol, not
artifacts of the transit–stub delay hierarchy.
"""

import random

from repro.experiments.common import format_table
from repro.metrics.stats import percentile
from repro.metrics.stretch import latency_stretch_by_destination, rdp_by_pair
from repro.core.protocol import OrderingFabric
from repro.topology.clusters import attach_hosts
from repro.topology.routing import RoutingTable
from repro.topology.waxman import WaxmanParams, generate_waxman
from repro.workloads.zipf import zipf_membership
from repro.pubsub.membership import GroupMembership

N_HOSTS = 128
GROUP_COUNTS = (8, 64)


def run_waxman(seed=0):
    topology = generate_waxman(WaxmanParams(n_nodes=400), seed=seed)
    routing = RoutingTable(topology)
    hosts = attach_hosts(topology, N_HOSTS, rng=random.Random(seed))
    rows = []
    rdp_gap = None
    for n_groups in GROUP_COUNTS:
        snapshot = zipf_membership(N_HOSTS, n_groups, rng=random.Random(seed + n_groups))
        membership = GroupMembership()
        for group, members in sorted(snapshot.items()):
            membership.create_group(members, group_id=group)
        fabric = OrderingFabric(membership, hosts, topology, routing, trace=False)
        for group in membership.groups():
            for member in sorted(membership.members(group)):
                fabric.publish(member, group)
                fabric.run()
        assert fabric.pending_messages() == {}
        stretch = sorted(latency_stretch_by_destination(fabric).values())
        rows.append(
            (
                n_groups,
                percentile(stretch, 50),
                percentile(stretch, 90),
                max(stretch),
            )
        )
        if n_groups == 64:
            points = rdp_by_pair(fabric)
            points.sort()
            quarter = max(1, len(points) // 4)
            close = max(r for _, r in points[:quarter])
            far = max(r for _, r in points[-quarter:])
            rdp_gap = (close, far)
    return rows, rdp_gap


def test_waxman_sensitivity(benchmark, save_result):
    rows, rdp_gap = benchmark.pedantic(run_waxman, rounds=1, iterations=1)
    table = format_table(
        ["groups", "p50_stretch", "p90_stretch", "max_stretch"],
        rows,
        title="A8: Figure 3 workload on a flat Waxman topology (128 hosts)",
    )
    save_result("a8_waxman", table)
    by_groups = {row[0]: row for row in rows}
    benchmark.extra_info.update(
        {
            "p50_stretch_8groups": round(by_groups[8][1], 2),
            "p50_stretch_64groups": round(by_groups[64][1], 2),
            "rdp_close_max": round(rdp_gap[0], 1),
            "rdp_far_max": round(rdp_gap[1], 1),
        }
    )
    # Sub-linear growth holds off the transit-stub hierarchy too.
    assert by_groups[64][1] < 8 * by_groups[8][1]
    # Close pairs still pay the largest relative penalty.
    assert rdp_gap[0] > rdp_gap[1]
