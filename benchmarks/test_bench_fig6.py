"""Figure 6 benchmark — sequencing-node stress vs number of groups.

Shape asserted (paper Section 4.3): average stress starts high with few
groups (one node forwards everything), drops as nodes are added, and
settles in the vicinity of 0.2 rather than collapsing to zero.
"""

from conftest import bench_runs

from repro.experiments import fig6_stress as fig6

GROUP_COUNTS = (2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64)


def test_fig6_stress(benchmark, env128, save_result):
    runs = bench_runs()
    results = benchmark.pedantic(
        fig6.run_fig6,
        args=(env128,),
        kwargs={"group_counts": GROUP_COUNTS, "runs": runs},
        rounds=1,
        iterations=1,
    )
    table = fig6.render(results)
    save_result("fig6_stress", table)

    mean = {g: sum(v) / len(v) for g, v in results.items() if v}
    benchmark.extra_info.update(
        {
            "runs": runs,
            "avg_stress_4groups": round(mean[4], 3),
            "avg_stress_32groups": round(mean[32], 3),
            "avg_stress_64groups": round(mean[64], 3),
        }
    )
    # Few groups: nodes forward most of them.
    assert mean[4] > 0.5
    # Stress decreases as the sequencing network grows...
    assert mean[32] < mean[4]
    # ...but stabilizes: it never collapses to (near) zero.
    assert mean[64] > 0.05
