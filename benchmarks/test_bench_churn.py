"""A3 — dynamic membership churn (the paper's Section 5 future work).

"When changes in the group membership are infrequent or along existing
patterns, we expect very little churn in the sequencing graph."

The benchmark applies a stream of group add/remove operations to an
incrementally-maintained sequencing graph and measures reconfiguration
cost: atoms created/retired per operation and how much of the existing
arrangement survives (surviving atoms keep their relative chain order by
construction).  Lazy removal is compared against eager splicing.
"""

import random

from conftest import bench_runs

from repro.core.sequencing_graph import SequencingGraph
from repro.experiments.common import format_table
from repro.workloads.zipf import zipf_membership


def run_churn(n_hosts=128, n_groups=24, operations=200, lazy=True, seed=0):
    rng = random.Random(seed)
    snapshot = zipf_membership(n_hosts, n_groups, rng=rng)
    graph = SequencingGraph.build(snapshot)
    live = dict(snapshot)
    next_id = n_groups

    atoms_created = 0
    atoms_retired = 0
    max_atoms = len(graph.atoms)
    for _ in range(operations):
        if live and rng.random() < 0.5:
            victim = rng.choice(sorted(live))
            atoms_retired += len(graph.remove_group(victim, lazy=lazy))
            del live[victim]
        else:
            size = max(2, round(n_hosts * 0.75 / rng.randint(1, n_groups)))
            members = set(rng.sample(range(n_hosts), size))
            atoms_created += len(graph.add_group(next_id, members))
            live[next_id] = members
            next_id += 1
        graph.validate()
        max_atoms = max(max_atoms, len(graph.atoms))
    retired_backlog = len(graph.retired)
    graph.compact()
    graph.validate()
    return {
        "operations": operations,
        "atoms_created": atoms_created,
        "atoms_retired": atoms_retired,
        "retired_backlog_at_end": retired_backlog,
        "max_atoms_alive": max_atoms,
        "final_groups": len(graph.groups()),
    }


def test_churn_lazy_vs_eager(benchmark, env128, save_result):
    operations = 10 * bench_runs(20)

    def both():
        lazy = run_churn(operations=operations, lazy=True, seed=1)
        eager = run_churn(operations=operations, lazy=False, seed=1)
        return lazy, eager

    lazy, eager = benchmark.pedantic(both, rounds=1, iterations=1)
    table = format_table(
        ["metric", "lazy", "eager"],
        [(k, lazy[k], eager[k]) for k in sorted(lazy)],
        title=f"A3: sequencing-graph churn over {operations} membership ops",
    )
    save_result("a3_churn", table)
    benchmark.extra_info.update(
        {
            "ops": operations,
            "lazy_backlog": lazy["retired_backlog_at_end"],
            "max_atoms_lazy": lazy["max_atoms_alive"],
            "max_atoms_eager": eager["max_atoms_alive"],
        }
    )

    # Same logical work either way.
    assert lazy["atoms_created"] == eager["atoms_created"]
    assert lazy["final_groups"] == eager["final_groups"]
    # Lazy removal defers work: retired placeholders accumulate.
    assert lazy["retired_backlog_at_end"] > 0
    assert eager["retired_backlog_at_end"] == 0
    # Lazy keeps more atoms alive at peak (the efficiency-only cost the
    # paper accepts for simpler reconfiguration).
    assert lazy["max_atoms_alive"] >= eager["max_atoms_alive"]
