"""A3 — dynamic membership churn (the paper's Section 5 future work).

"When changes in the group membership are infrequent or along existing
patterns, we expect very little churn in the sequencing graph."

Two layers of the same question:

* the **graph** microbenchmark applies a stream of group add/remove
  operations to an incrementally-maintained sequencing graph and
  measures reconfiguration cost in atoms created/retired (lazy removal
  vs eager splicing);
* the **online campaign** benchmark drives whole fabrics through
  epoch-fenced online reconfiguration under live traffic
  (:mod:`repro.faults.churn`): what a switch costs in drained events and
  how delivery throughput holds across epochs.
"""

import random

from conftest import bench_runs

from repro.core.sequencing_graph import SequencingGraph
from repro.experiments.common import format_table
from repro.faults.churn import ChurnConfig, execute_churn_campaign
from repro.workloads.zipf import zipf_membership


def run_churn(n_hosts=128, n_groups=24, operations=200, lazy=True, seed=0):
    rng = random.Random(seed)
    snapshot = zipf_membership(n_hosts, n_groups, rng=rng)
    graph = SequencingGraph.build(snapshot)
    live = dict(snapshot)
    next_id = n_groups

    atoms_created = 0
    atoms_retired = 0
    max_atoms = len(graph.atoms)
    for _ in range(operations):
        if live and rng.random() < 0.5:
            victim = rng.choice(sorted(live))
            atoms_retired += len(graph.remove_group(victim, lazy=lazy))
            del live[victim]
        else:
            size = max(2, round(n_hosts * 0.75 / rng.randint(1, n_groups)))
            members = set(rng.sample(range(n_hosts), size))
            atoms_created += len(graph.add_group(next_id, members))
            live[next_id] = members
            next_id += 1
        graph.validate()
        max_atoms = max(max_atoms, len(graph.atoms))
    retired_backlog = len(graph.retired)
    graph.compact()
    graph.validate()
    return {
        "operations": operations,
        "atoms_created": atoms_created,
        "atoms_retired": atoms_retired,
        "retired_backlog_at_end": retired_backlog,
        "max_atoms_alive": max_atoms,
        "final_groups": len(graph.groups()),
    }


def test_churn_lazy_vs_eager(benchmark, env128, save_result):
    operations = 10 * bench_runs(20)

    def both():
        lazy = run_churn(operations=operations, lazy=True, seed=1)
        eager = run_churn(operations=operations, lazy=False, seed=1)
        return lazy, eager

    lazy, eager = benchmark.pedantic(both, rounds=1, iterations=1)
    table = format_table(
        ["metric", "lazy", "eager"],
        [(k, lazy[k], eager[k]) for k in sorted(lazy)],
        title=f"A3: sequencing-graph churn over {operations} membership ops",
    )
    save_result("a3_churn", table)
    benchmark.extra_info.update(
        {
            "ops": operations,
            "lazy_backlog": lazy["retired_backlog_at_end"],
            "max_atoms_lazy": lazy["max_atoms_alive"],
            "max_atoms_eager": eager["max_atoms_alive"],
        }
    )

    # Same logical work either way.
    assert lazy["atoms_created"] == eager["atoms_created"]
    assert lazy["final_groups"] == eager["final_groups"]
    # Lazy removal defers work: retired placeholders accumulate.
    assert lazy["retired_backlog_at_end"] > 0
    assert eager["retired_backlog_at_end"] == 0
    # Lazy keeps more atoms alive at peak (the efficiency-only cost the
    # paper accepts for simpler reconfiguration).
    assert lazy["max_atoms_alive"] >= eager["max_atoms_alive"]


def test_online_reconfiguration_campaign(benchmark, save_result):
    """End-to-end churn through the online epoch-fence path.

    A seeded campaign: sustained join/leave churn applied through
    epoch-fenced switches on live fabrics, publishes in flight at every
    cutover.  Measures the fence-drain cost per switch and asserts the
    cross-epoch invariants stay clean (the benchmark doubles as a
    large-scale RT32x exercise; fault injection is off so the drain cost
    is the reconfiguration's own, not failover's).
    """
    churn_events = 2 * bench_runs(20)
    config = ChurnConfig(
        hosts=48,
        groups=12,
        events=120,
        churn_events=churn_events,
        switches=6,
        seed=2,
        horizon=500.0,
        loss_rate=0.0,
        node_crashes=0,
        host_crashes=0,
        loss_windows=0,
        delay_spikes=0,
        permanent_crash=False,
        mid_switch_crash=False,
    )

    run = benchmark.pedantic(
        lambda: execute_churn_campaign(config), rounds=1, iterations=1
    )
    report = run.report
    switches = [e["switch"] for e in report["epochs"] if e["switch"]]
    rows = [
        (
            e["epoch"],
            e["groups"],
            e["published"],
            e["delivered"],
            e["switch"]["drain_events"] if e["switch"] else "-",
            e["switch"]["drain_attempts"] if e["switch"] else "-",
        )
        for e in report["epochs"]
    ]
    table = format_table(
        ["epoch", "groups", "published", "delivered", "drain_events",
         "drain_attempts"],
        rows,
        title=(
            f"A3b: online epoch-fenced churn — {churn_events} membership "
            f"events over {config.switches} switches, traffic in flight"
        ),
    )
    save_result("a3b_online_churn", table)
    benchmark.extra_info.update(
        {
            "churn_events": churn_events,
            "switches": len(switches),
            "drain_events_total": sum(s["drain_events"] for s in switches),
            "published": report["published"],
            "delivered": report["delivered"],
        }
    )

    # Clean under the full RT30x + RT32x audit, all traffic accounted.
    assert report["ok"], report["findings"]
    assert report["published"] == config.events
    assert report["quiescent"]
    # Every switch went through the online fence path, first try (no
    # faults are racing the drain here).
    assert len(switches) == config.switches
    assert all(s["online"] and s["drain_attempts"] == 1 for s in switches)
