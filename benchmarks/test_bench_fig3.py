"""Figure 3 benchmark — CDF of latency stretch (128 hosts, 8–64 groups).

Shape asserted (paper Section 4.2): stretch grows with the number of
groups but sub-linearly — going from 8 to 64 groups must grow the typical
stretch by well under 8x.
"""

from repro.experiments import fig3_latency_stretch as fig3
from repro.metrics.stats import percentile


def test_fig3_latency_stretch(benchmark, env128, save_result):
    results = benchmark.pedantic(
        fig3.run_fig3, args=(env128,), kwargs={"group_counts": (8, 16, 32, 64)},
        rounds=1, iterations=1,
    )
    table = fig3.render(results)
    save_result("fig3_latency_stretch", table)

    p50 = {g: percentile(v, 50) for g, v in results.items()}
    p90 = {g: percentile(v, 90) for g, v in results.items()}
    benchmark.extra_info.update(
        {f"p50_stretch_{g}groups": round(p50[g], 2) for g in p50}
    )

    # Stretch is a real penalty (>1) but bounded.
    assert all(p50[g] > 1.0 for g in p50)
    # Sub-linear growth: 8x groups produces far less than 8x stretch.
    assert p50[64] < 8 * p50[8]
    assert p90[64] < 8 * p90[8]
    # More groups never make ordering dramatically cheaper.
    assert p50[64] >= 0.5 * p50[8]
