"""Figure 5 benchmark — sequencing nodes vs number of groups.

Shape asserted (paper Section 4.3): the number of (non-ingress-only)
sequencing nodes grows with the number of groups, and growth turns more
gradual past ~30 groups (per-group increments shrink).
"""

from conftest import bench_runs

from repro.experiments import fig5_sequencing_nodes as fig5

GROUP_COUNTS = (1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64)


def test_fig5_sequencing_nodes(benchmark, env128, save_result):
    runs = bench_runs()
    results = benchmark.pedantic(
        fig5.run_fig5,
        args=(env128,),
        kwargs={"group_counts": GROUP_COUNTS, "runs": runs},
        rounds=1,
        iterations=1,
    )
    table = fig5.render(results)
    save_result("fig5_sequencing_nodes", table)

    mean = {g: sum(v) / len(v) for g, v in results.items()}
    benchmark.extra_info.update(
        {
            "runs": runs,
            "mean_nodes_8groups": round(mean[8], 1),
            "mean_nodes_32groups": round(mean[32], 1),
            "mean_nodes_64groups": round(mean[64], 1),
        }
    )
    # Monotone-ish growth with group count.
    assert mean[64] > mean[8] > mean[1]
    # Growth turns gradual: per-group increment after 32 groups is smaller
    # than before 32 groups.
    early_rate = (mean[32] - mean[8]) / (32 - 8)
    late_rate = (mean[64] - mean[32]) / (64 - 32)
    assert late_rate < early_rate
    # Node count stays far below the overlap count (co-location works).
    assert mean[64] < 64
