"""A5 — saturation throughput: sequencing atoms vs. the central sequencer.

The paper's core scalability claim (Sections 1/4.3): a centralized
coordinator processes every message, so system throughput is capped by
one machine, while sequencing atoms split the ordering work so "the
maximum message load is limited by receivers".  With a per-message
service time of ``SERVICE_MS`` at each sequencing machine, the
coordinator saturates at ``1000/SERVICE_MS`` msg/s; the decentralized
design keeps delivery latency bounded beyond that offered load.

The benchmark sweeps offered load and reports mean delivery latency and
queue high-water marks for both designs.
"""

import random

from repro.baselines.central_sequencer import CentralSequencerFabric
from repro.experiments.common import format_table
from repro.workloads.zipf import zipf_membership

SERVICE_MS = 1.0
N_GROUPS = 16
DURATION_MS = 2_000.0
#: offered loads in messages/second; the coordinator's capacity is 1000/s
OFFERED_LOADS = (400, 800, 1600, 3200)


def _schedule_publishes(fabric, snapshot, rate_per_s, duration_ms, seed):
    """Schedule an open-loop arrival process of group-member publishes."""
    rng = random.Random(seed)
    groups = sorted(snapshot)
    interval = 1000.0 / rate_per_s
    t = 0.0
    count = 0
    while t < duration_ms:
        group = rng.choice(groups)
        sender = rng.choice(sorted(snapshot[group]))
        fabric.sim.schedule(t, fabric.publish, sender, group, None)
        t += interval
        count += 1
    return count


def _mean_latency(fabric, n_hosts):
    total, count = 0.0, 0
    for host in range(n_hosts):
        for record in fabric.delivered(host):
            total += record.time - record.publish_time
            count += 1
    return total / count if count else float("nan")


def run_throughput(env, seed=0):
    snapshot = zipf_membership(env.n_hosts, N_GROUPS, rng=random.Random(seed))
    rows = []
    for rate in OFFERED_LOADS:
        ours = env.build_fabric(
            env.membership_from(snapshot),
            seed=seed,
            trace=False,
            service_time=SERVICE_MS,
        )
        central = CentralSequencerFabric(
            env.membership_from(snapshot),
            env.hosts,
            env.routing,
            trace=False,
            service_time=SERVICE_MS,
        )
        sent = _schedule_publishes(ours, snapshot, rate, DURATION_MS, seed)
        _schedule_publishes(central, snapshot, rate, DURATION_MS, seed)
        ours.run()
        central.run()
        max_queue = max(
            p.queue_high_water for p in ours.node_processes.values()
        )
        rows.append(
            (
                rate,
                sent,
                _mean_latency(ours, env.n_hosts),
                _mean_latency(central, env.n_hosts),
                max_queue,
                central.coordinator.queue_high_water,
            )
        )
    return rows


def test_throughput_saturation(benchmark, env128, save_result):
    rows = benchmark.pedantic(run_throughput, args=(env128,), rounds=1, iterations=1)
    table = format_table(
        [
            "offered_msg_per_s",
            "sent",
            "latency_ours_ms",
            "latency_central_ms",
            "max_queue_ours",
            "queue_central",
        ],
        rows,
        title=(
            f"A5: throughput with {SERVICE_MS}ms sequencer service time "
            f"(coordinator capacity = {int(1000 / SERVICE_MS)} msg/s)"
        ),
    )
    save_result("a5_throughput", table)

    by_rate = {row[0]: row for row in rows}
    benchmark.extra_info.update(
        {
            "latency_ours_3200": round(by_rate[3200][2], 1),
            "latency_central_3200": round(by_rate[3200][3], 1),
        }
    )

    # Below coordinator capacity both designs deliver with low latency.
    assert by_rate[400][2] < 200
    assert by_rate[400][3] < 200
    # Past saturation the coordinator's queue and latency blow up ...
    assert by_rate[3200][3] > 5 * by_rate[400][3]
    assert by_rate[3200][5] > 100
    # ... while the decentralized design stays bounded (the crossover):
    assert by_rate[3200][2] < by_rate[3200][3]
