"""A6 — failure injection: sequencer downtime under sustained traffic.

The decentralization argument includes fault isolation: a crashed
sequencing node stalls only the groups whose paths cross it, and the
Section 3.1 retransmission buffers mask the downtime entirely (no loss,
no reordering).  The benchmark runs sustained traffic, takes the busiest
node down for a window, and reports delivered counts and the latency
penalty confined to the affected groups.
"""

import random

from repro.experiments.common import format_table
from repro.workloads.zipf import zipf_membership

N_GROUPS = 12
N_MESSAGES = 200
DOWNTIME_MS = 50.0


def run_failure(env, seed=0):
    snapshot = zipf_membership(env.n_hosts, N_GROUPS, rng=random.Random(seed))
    results = {}
    for crash in (False, True):
        membership = env.membership_from(snapshot)
        fabric = env.build_fabric(
            membership, seed=seed, trace=False, retransmit_timeout=5.0
        )
        node = max(
            fabric.node_processes.values(), key=lambda p: len(p.atom_runtimes)
        )
        affected_groups = {
            g for runtime in node.atom_runtimes.values() for g in runtime.next_atom
        }
        if crash:
            fabric.sim.schedule(5.0, node.crash, DOWNTIME_MS)
        rng = random.Random(seed + 1)
        groups = sorted(snapshot)
        t = 0.0
        for _ in range(N_MESSAGES):
            group = rng.choice(groups)
            sender = rng.choice(sorted(snapshot[group]))
            fabric.sim.schedule(t, fabric.publish, sender, group, None)
            t += 0.5
        fabric.run()
        assert fabric.pending_messages() == {}

        affected_latency, affected_count = 0.0, 0
        unaffected_latency, unaffected_count = 0.0, 0
        delivered = 0
        for host in range(env.n_hosts):
            for record in fabric.delivered(host):
                delivered += 1
                latency = record.time - record.publish_time
                if record.stamp.group in affected_groups:
                    affected_latency += latency
                    affected_count += 1
                else:
                    unaffected_latency += latency
                    unaffected_count += 1
        results[crash] = {
            "delivered": delivered,
            "affected_mean_ms": affected_latency / max(affected_count, 1),
            "unaffected_mean_ms": unaffected_latency / max(unaffected_count, 1),
            "dropped_at_node": node.packets_dropped_while_down,
        }
    return results


def test_failure_injection(benchmark, env128, save_result):
    results = benchmark.pedantic(run_failure, args=(env128,), rounds=1, iterations=1)
    healthy, crashed = results[False], results[True]
    table = format_table(
        ["metric", "healthy", "with_crash"],
        [(k, healthy[k], crashed[k]) for k in sorted(healthy)],
        title=(
            f"A6: busiest sequencing node down {DOWNTIME_MS:.0f}ms during "
            f"{N_MESSAGES} messages"
        ),
    )
    save_result("a6_failures", table)
    benchmark.extra_info.update(
        {
            "affected_penalty_ms": round(
                crashed["affected_mean_ms"] - healthy["affected_mean_ms"], 2
            ),
            "dropped_at_node": crashed["dropped_at_node"],
        }
    )

    # No loss: every message delivered in both runs.
    assert crashed["delivered"] == healthy["delivered"]
    # The crash actually interfered...
    assert crashed["dropped_at_node"] > 0
    # ...and raised latency for the affected groups.
    assert crashed["affected_mean_ms"] > healthy["affected_mean_ms"]
