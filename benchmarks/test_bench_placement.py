"""A4 — placement ablation: Section 3.4 heuristic vs random scattering.

"Randomly scattering sequencing atoms throughout the network would lead
to poor performance: because messages must traverse the path of
sequencing atoms for the group, many needless network hops would result."

The ablation runs the same workload over (a) the paper's two-step
co-location + neighbor-walk machine assignment and (b) one-atom-per-node
random placement, and compares median latency stretch.  Correctness is
placement-independent (asserted too).
"""

import itertools
import random

from repro.core.placement import random_placement
from repro.core.protocol import OrderingFabric
from repro.core.sequencing_graph import SequencingGraph
from repro.experiments.common import format_table
from repro.metrics.stats import percentile
from repro.metrics.stretch import latency_stretch_by_destination
from repro.workloads.zipf import zipf_membership

N_GROUPS = 16


def run_ablation(env, seed=0):
    snapshot = zipf_membership(env.n_hosts, N_GROUPS, rng=random.Random(seed))
    results = {}
    fabrics = {}
    for mode in ("heuristic", "random"):
        membership = env.membership_from(snapshot)
        graph = SequencingGraph.build(snapshot, rng=random.Random(seed))
        placement = (
            None
            if mode == "heuristic"
            else random_placement(graph, env.topology, rng=random.Random(seed))
        )
        fabric = OrderingFabric(
            membership,
            env.hosts,
            env.topology,
            env.routing,
            seed=seed,
            graph=graph,
            placement=placement,
            trace=False,
        )
        env.run_one_message_per_membership(fabric)
        assert fabric.pending_messages() == {}
        stretch = sorted(latency_stretch_by_destination(fabric).values())
        results[mode] = stretch
        fabrics[mode] = fabric
    return results, fabrics


def test_placement_ablation(benchmark, env128, save_result):
    results, fabrics = benchmark.pedantic(
        run_ablation, args=(env128,), rounds=1, iterations=1
    )
    rows = [
        (
            mode,
            percentile(values, 50),
            percentile(values, 90),
            max(values),
        )
        for mode, values in results.items()
    ]
    table = format_table(
        ["placement", "p50_stretch", "p90_stretch", "max_stretch"],
        rows,
        title=f"A4: placement ablation, 128 hosts, {N_GROUPS} Zipf groups",
    )
    save_result("a4_placement", table)

    p50 = {mode: percentile(values, 50) for mode, values in results.items()}
    benchmark.extra_info.update(
        {f"p50_stretch_{mode}": round(v, 2) for mode, v in p50.items()}
    )
    # The heuristic placement beats random scattering.
    assert p50["heuristic"] < p50["random"]

    # Correctness is placement-independent: the random-placement run still
    # delivers consistently.
    fabric = fabrics["random"]
    hosts = random.Random(0).sample(range(env128.n_hosts), 16)
    for a, b in itertools.combinations(hosts, 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]
