"""A1 — per-message ordering-metadata overhead vs vector timestamps.

Validates the paper's Sections 2 / 4.4 claims: the stamp a message
carries is proportional to the number of its group's overlaps (bounded by
the group count), never to the group size or node population, so the
sequencing approach beats system-wide vector timestamps whenever nodes
outnumber groups — and beats even per-group vector timestamps for large
groups.
"""

import random

from conftest import bench_runs

from repro.core.messages import (
    ATOM_ENTRY_BYTES,
    HEADER_BYTES,
    VECTOR_ENTRY_BYTES,
    vector_timestamp_bytes,
)
from repro.experiments.common import format_table
from repro.metrics.overhead import stamp_overhead_bytes
from repro.workloads.zipf import zipf_membership


def run_overhead(env, group_counts=(8, 16, 32, 64), runs=10):
    rows = []
    n_hosts = env.n_hosts
    for n_groups in group_counts:
        worst_stamp = 0
        total_stamp = 0
        total_groups = 0
        group_vector_worst = 0
        for run in range(runs):
            snapshot = zipf_membership(n_hosts, n_groups, rng=random.Random(run))
            graph = env.build_graph(snapshot, seed=run)
            overhead = stamp_overhead_bytes(graph)
            worst_stamp = max(worst_stamp, max(overhead.values()))
            total_stamp += sum(overhead.values())
            total_groups += len(overhead)
            group_vector_worst = max(
                group_vector_worst,
                HEADER_BYTES
                + VECTOR_ENTRY_BYTES * max(len(m) for m in snapshot.values()),
            )
        rows.append(
            (
                n_groups,
                total_stamp / total_groups,
                worst_stamp,
                group_vector_worst,
                vector_timestamp_bytes(n_hosts),
            )
        )
    return rows


def test_overhead_vs_vector_timestamps(benchmark, env128, save_result):
    rows = benchmark.pedantic(
        run_overhead, args=(env128,), kwargs={"runs": bench_runs(10)},
        rounds=1, iterations=1,
    )
    table = format_table(
        ["groups", "mean_stamp_B", "worst_stamp_B", "group_vector_B", "dense_vector_B"],
        rows,
        title="A1: ordering metadata bytes per message (128 hosts)",
    )
    save_result("a1_overhead", table)

    for n_groups, _mean_stamp, worst_stamp, group_vector, dense_vector in rows:
        # Stamp entries bounded by the group count.
        assert worst_stamp <= HEADER_BYTES + ATOM_ENTRY_BYTES * (n_groups - 1)
        # The headline: cheaper than system-wide vector timestamps while
        # nodes outnumber groups.
        assert worst_stamp < dense_vector
        benchmark.extra_info[f"worst_stamp_{n_groups}groups_B"] = worst_stamp
    # For the Zipf workload the biggest group is ~0.75*128 members, so even
    # per-group vectors are heavier than the worst stamp at small group
    # counts.
    n_groups, _m, worst_stamp, group_vector, _d = rows[0]
    assert worst_stamp < group_vector
