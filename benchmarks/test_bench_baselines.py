"""A2 — sequencing atoms vs centralized sequencer vs propagation trees.

Validates the paper's scalability positioning (Sections 1, 2, 4.3):

* a centralized coordinator processes *every* message in the system,
  while the busiest sequencing atom handles only the traffic of its
  overlapped groups — the gap grows with unrelated traffic;
* Garcia-Molina/Spauster propagation trees make destination hosts forward
  and order messages for groups they may not subscribe to; the busiest
  host forwards a large share of all messages.
"""

import random

from repro.baselines.central_sequencer import CentralSequencerFabric
from repro.baselines.propagation_tree import PropagationTreeFabric
from repro.experiments.common import format_table
from repro.workloads.zipf import zipf_membership

N_GROUPS = 16
N_MESSAGES = 300


def run_comparison(env, seed=0):
    rng = random.Random(seed)
    snapshot = zipf_membership(env.n_hosts, N_GROUPS, rng=rng)
    sends = []
    groups = sorted(snapshot)
    for _ in range(N_MESSAGES):
        group = rng.choice(groups)
        sender = rng.choice(sorted(snapshot[group]))
        sends.append((sender, group))

    membership = env.membership_from(snapshot)
    ours = env.build_fabric(membership, seed=seed, trace=False)
    central = CentralSequencerFabric(
        env.membership_from(snapshot), env.hosts, env.routing, trace=False
    )
    tree = PropagationTreeFabric(
        env.membership_from(snapshot), env.hosts, env.routing, trace=False
    )
    for fabric in (ours, central, tree):
        for sender, group in sends:
            fabric.publish(sender, group)
        fabric.run()

    max_atom_load = max(
        r.messages_sequenced + r.messages_passed_through
        for p in ours.node_processes.values()
        for r in p.atom_runtimes.values()
    )
    max_node_load = max(ours.sequencing_load().values())
    coordinator_load = central.coordinator_load()
    max_tree_forwarding = max(tree.forwarding_load().values())

    def mean_latency(fabric):
        total, count = 0.0, 0
        for host in range(env.n_hosts):
            for record in fabric.delivered(host):
                total += record.time - record.publish_time
                count += 1
        return total / count

    return {
        "max_atom_load": max_atom_load,
        "max_seqnode_load": max_node_load,
        "coordinator_load": coordinator_load,
        "max_tree_forwarding": max_tree_forwarding,
        "latency_ours": mean_latency(ours),
        "latency_central": mean_latency(central),
        "latency_tree": mean_latency(tree),
    }


def test_baseline_comparison(benchmark, env128, save_result):
    stats = benchmark.pedantic(
        run_comparison, args=(env128,), rounds=1, iterations=1
    )
    table = format_table(
        ["metric", "value"],
        sorted(stats.items()),
        title=(
            f"A2: load and latency, {N_MESSAGES} messages over {N_GROUPS} "
            "Zipf groups, 128 hosts"
        ),
    )
    save_result("a2_baselines", table)
    benchmark.extra_info.update(
        {k: round(v, 2) for k, v in stats.items()}
    )

    # The coordinator is the bottleneck: it sequences every message.
    assert stats["coordinator_load"] == N_MESSAGES
    # No sequencing atom (or even co-located node) comes close.
    assert stats["max_atom_load"] < N_MESSAGES
    assert stats["max_seqnode_load"] <= N_MESSAGES
    # Propagation trees push heavy forwarding onto the busiest host.
    assert stats["max_tree_forwarding"] > 0
    # Mean delivery latencies are in the same order of magnitude: the
    # decentralized design does not explode latency relative to the
    # centralized foil.
    assert stats["latency_ours"] < 10 * stats["latency_central"]
