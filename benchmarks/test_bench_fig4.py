"""Figure 4 benchmark — RDP vs unicast delay (128 hosts, 64 groups).

Shape asserted (paper Section 4.2): "The highest values for RDP
correspond to the pairs in which the sender and the destination are very
close to each other" — max and mean RDP decrease from the closest delay
bin to the farthest.
"""

from repro.experiments import fig4_rdp as fig4


def test_fig4_rdp_vs_unicast(benchmark, env128, save_result):
    points = benchmark.pedantic(
        fig4.run_fig4, args=(env128,), kwargs={"n_groups": 64},
        rounds=1, iterations=1,
    )
    table = fig4.render(points)
    save_result("fig4_rdp", table)

    rows = fig4.bin_points(points, n_bins=8)
    assert len(rows) >= 3
    closest, farthest = rows[0], rows[-1]
    benchmark.extra_info.update(
        {
            "pairs": len(points),
            "max_rdp_closest_bin": round(closest[4], 2),
            "max_rdp_farthest_bin": round(farthest[4], 2),
        }
    )
    # Close pairs pay the largest relative penalty.
    assert closest[4] > farthest[4]
    assert closest[3] > farthest[3]
    # Far pairs pay only a small constant factor.
    assert farthest[3] < 5.0
