"""Figure 8 benchmark — sequencing nodes & double overlaps vs occupancy.

Shapes asserted (paper Section 4.5): double overlaps rise with occupancy
until every pair overlaps; the number of sequencing nodes peaks around
0.2 occupancy, declines afterwards, and collapses to one when occupancy
exceeds ~0.9 (every overlap includes the whole population).
"""

from conftest import bench_runs

from repro.experiments import fig8_occupancy as fig8

OCCUPANCIES = tuple(x / 20 for x in range(1, 21))


def test_fig8_occupancy(benchmark, env128, save_result):
    runs = max(3, bench_runs() // 5)
    results = benchmark.pedantic(
        fig8.run_fig8,
        args=(env128,),
        kwargs={"n_groups": 32, "occupancies": OCCUPANCIES, "runs": runs},
        rounds=1,
        iterations=1,
    )
    table = fig8.render(results)
    save_result("fig8_occupancy", table)

    overlaps = {occ: results[occ][0] for occ in results}
    nodes = {occ: results[occ][1] for occ in results}
    peak_occ = max(nodes, key=lambda occ: nodes[occ])
    benchmark.extra_info.update(
        {
            "runs": runs,
            "node_peak_occupancy": peak_occ,
            "nodes_at_peak": round(nodes[peak_occ], 1),
            "nodes_at_full": nodes[1.0],
        }
    )
    # Overlaps saturate at the full pair count.
    assert overlaps[1.0] == 32 * 31 / 2
    assert overlaps[0.05] < overlaps[0.5]
    # Sequencing nodes peak at low-moderate occupancy...
    assert 0.05 <= peak_occ <= 0.35
    # ...decline beyond the peak...
    assert nodes[0.6] < nodes[peak_occ]
    # ...and collapse to one at (near-)full occupancy.
    assert nodes[1.0] == 1
    assert nodes[0.95] <= 4
