"""Figure 7 benchmark — atoms on a message path / total nodes.

Shape asserted (paper Section 4.4): "In the worst case, the number of
sequencing atoms in the path of a message is less than half of the total
number of nodes that participate", the CDF shifts right with more groups,
and the per-message stamp stays cheaper than a system-wide vector
timestamp (nodes > groups regime).
"""

from conftest import bench_runs

from repro.experiments import fig7_atoms_on_path as fig7

GROUP_COUNTS = (8, 16, 32, 64)


def test_fig7_atoms_on_path(benchmark, env128, save_result):
    runs = max(5, bench_runs() // 3)
    results = benchmark.pedantic(
        fig7.run_fig7,
        args=(env128,),
        kwargs={"group_counts": GROUP_COUNTS, "runs": runs},
        rounds=1,
        iterations=1,
    )
    table = fig7.render(results)
    save_result("fig7_atoms_on_path", table)

    worst = {g: max(v) for g, v in results.items()}
    benchmark.extra_info.update(
        {f"worst_ratio_{g}groups": round(worst[g], 3) for g in worst}
    )
    # The paper's headline bound.
    assert all(w < 0.5 for w in worst.values())
    # More groups -> more overlaps per group (CDF shifts right).
    assert worst[64] > worst[8]
    # Path length in atoms is bounded by the number of groups.
    n_hosts = env128.n_hosts
    for n_groups, values in results.items():
        assert max(values) * n_hosts <= n_groups
